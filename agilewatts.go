// Package agilewatts is the public API of this reproduction of
// "AgileWatts: An Energy-Efficient CPU Core Idle-State Architecture for
// Latency-Sensitive Server Applications" (MICRO 2022).
//
// The package exposes three layers:
//
//   - The hardware model: C-state catalog (Table 1/2), the AgileWatts
//     microarchitecture (UFPG, CCSM, PMA flows, PPA — Table 3/4,
//     Sec. 5.2 latencies) via Architecture().
//   - The platform simulator: RunService simulates a 20-CPU Skylake
//     server running Memcached/Kafka/MySQL under any of the paper's
//     named C-state configurations and returns residencies, power and
//     latency distributions.
//   - The evaluation harness: RunExperiment regenerates any table or
//     figure of the paper by name.
//
// Everything is deterministic for a fixed seed and uses only the
// standard library.
package agilewatts

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cstate"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported model types for API users.
type (
	// Catalog is the C-state parameter catalog (paper Table 1).
	Catalog = cstate.Catalog
	// StateID identifies a core C-state.
	StateID = cstate.ID
	// Architecture is the AgileWatts hardware model (Sec. 4-5).
	Architecture = core.Architecture
	// PlatformConfig is a named C-state/Turbo configuration (Sec. 7.2).
	PlatformConfig = governor.Config
	// ServiceProfile characterizes a latency-critical service.
	ServiceProfile = workload.Profile
	// Result is a simulation outcome.
	Result = server.Result
	// Options controls experiment fidelity.
	Options = experiments.Options
	// Duration is a simulated duration in nanoseconds.
	Duration = sim.Time
)

// C-state identifiers.
const (
	C0   = cstate.C0
	C1   = cstate.C1
	C1E  = cstate.C1E
	C6   = cstate.C6
	C6A  = cstate.C6A
	C6AE = cstate.C6AE
)

// Skylake returns the calibrated Skylake-server C-state catalog extended
// with AgileWatts' C6A and C6AE states.
func Skylake() *Catalog { return cstate.Skylake() }

// EPYC returns the AMD EPYC-like C-state catalog (Sec. 5.5), usable for
// heterogeneous cluster nodes.
func EPYC() *Catalog { return cstate.EPYC() }

// NewArchitecture returns the paper-calibrated AgileWatts core design.
func NewArchitecture() *Architecture { return core.NewArchitecture() }

// Named platform configurations from the paper.
var (
	Baseline       = governor.Baseline
	AW             = governor.AW
	NTBaseline     = governor.NTBaseline
	NTNoC6         = governor.NTNoC6
	NTNoC6NoC1E    = governor.NTNoC6NoC1E
	TNoC6          = governor.TNoC6
	TNoC6NoC1E     = governor.TNoC6NoC1E
	TC6ANoC6NoC1E  = governor.TC6ANoC6NoC1E
	NTC6ANoC6NoC1E = governor.NTC6ANoC6NoC1E
)

// Configs lists every named platform configuration.
func Configs() []PlatformConfig { return governor.AllConfigs() }

// ConfigByName looks up a platform configuration.
func ConfigByName(name string) (PlatformConfig, error) { return governor.ConfigByName(name) }

// Service profiles.
func Memcached() ServiceProfile { return workload.Memcached() }

// Kafka returns the event-streaming service profile.
func Kafka() ServiceProfile { return workload.Kafka() }

// MySQL returns the OLTP service profile.
func MySQL() ServiceProfile { return workload.MySQL() }

// ServiceByName resolves "memcached", "kafka" or "mysql".
func ServiceByName(name string) (ServiceProfile, error) { return workload.ByName(name) }

// Dispatch policy names accepted by ServiceRun.Dispatch.
const (
	DispatchRoundRobin  = server.DispatchRoundRobin
	DispatchRandom      = server.DispatchRandom
	DispatchLeastLoaded = server.DispatchLeastLoaded
	DispatchPacked      = server.DispatchPacked
)

// DispatchPolicies lists the built-in dispatch policy names.
func DispatchPolicies() []string { return server.DispatchPolicies() }

// Load-generator names accepted by ServiceRun.LoadGen.
const (
	LoadOpenLoop   = server.LoadOpenLoop
	LoadClosedLoop = server.LoadClosedLoop
	LoadBursty     = server.LoadBursty
)

// LoadGenerators lists the built-in load-generator names.
func LoadGenerators() []string { return server.LoadGens() }

// MemcachedETC returns the high-fidelity Memcached profile whose service
// times come from a live Zipf/LRU key-value store model (see
// internal/kvstore). The seed drives cache warming.
func MemcachedETC(seed uint64) (ServiceProfile, error) { return workload.MemcachedETC(seed) }

// ServiceRun describes one simulation.
type ServiceRun struct {
	// Platform is the C-state/Turbo configuration (default Baseline).
	Platform PlatformConfig
	// Service is the workload profile (default Memcached).
	Service ServiceProfile
	// RateQPS is the aggregate offered load.
	RateQPS float64
	// DurationNS / WarmupNS bound the run (defaults: 500ms / 50ms).
	DurationNS Duration
	WarmupNS   Duration
	// Seed fixes all randomness (default 1).
	Seed uint64
	// SnoopRatePerSec adds per-core coherence traffic (Sec. 7.5).
	SnoopRatePerSec float64
	// Dispatch selects the request-to-core placement policy (default
	// round-robin; see DispatchPolicies).
	Dispatch string
	// LoadGen selects the arrival generator (default open-loop; see
	// LoadGenerators).
	LoadGen string
	// Connections is the closed-loop connection count (selecting the
	// closed-loop generator implicitly; RateQPS is then ignored).
	Connections int
	// ThinkTimeNS is the mean closed-loop think time (default 1ms).
	ThinkTimeNS Duration
	// Schedule, when set, makes the offered load time-varying within the
	// single run: the open-loop/bursty generator follows the schedule's
	// phases instead of holding RateQPS. A constant schedule reproduces
	// the stationary run bit-for-bit.
	Schedule *Schedule
}

// withDefaults fills the run description's defaulted fields — the one
// place RunService, the fleet builders and NewServiceInstance share, so
// a directly constructed instance can never simulate a different
// machine than the one-shot API for the same ServiceRun.
func (r ServiceRun) withDefaults() ServiceRun {
	if r.Platform.Name == "" {
		r.Platform = Baseline
	}
	if r.Service.Name == "" {
		r.Service = Memcached()
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// serverConfig maps the run description onto the simulator config (the
// full mapping; callers that delegate rate/schedule/duration elsewhere
// blank those fields).
func (r ServiceRun) serverConfig() server.Config {
	return server.Config{
		Platform:        r.Platform,
		Profile:         r.Service,
		RatePerSec:      r.RateQPS,
		Duration:        r.DurationNS,
		Warmup:          r.WarmupNS,
		Seed:            r.Seed,
		SnoopRatePerSec: r.SnoopRatePerSec,
		Dispatch:        r.Dispatch,
		LoadGen:         r.LoadGen,
		Schedule:        r.Schedule,

		ClosedLoopConnections: r.Connections,
		ThinkTime:             r.ThinkTimeNS,
	}
}

// RunService simulates the paper's 20-CPU server under the given run
// description.
func RunService(r ServiceRun) (Result, error) {
	return server.RunConfig(r.withDefaults().serverConfig())
}

// Cluster dispatch policy names accepted by ClusterRun.ClusterDispatch.
const (
	ClusterSpread      = cluster.DispatchSpread
	ClusterLeastLoaded = cluster.DispatchLeastLoaded
	ClusterConsolidate = cluster.DispatchConsolidate
)

// ClusterPolicies lists the cluster-level dispatch policy names.
func ClusterPolicies() []string { return cluster.Policies() }

// NodeConfig is a full per-node server configuration, for heterogeneous
// fleets (mixed catalogs, core counts, platform configurations).
type NodeConfig = server.Config

// ClusterResult is a fleet simulation outcome: per-node results plus
// fleet power, energy proportionality, and aggregated tail latency.
type ClusterResult = cluster.Result

// ClusterRun describes one fleet simulation: the embedded ServiceRun is
// the per-node template (its RateQPS is the aggregate fleet load), and
// the cluster dispatcher partitions that load across Nodes nodes.
type ClusterRun struct {
	ServiceRun
	// Nodes is the fleet size (default 1). Node i runs with seed
	// Seed+i, so nodes see independent randomness while the fleet stays
	// reproducible from one seed.
	Nodes int
	// ClusterDispatch selects the fleet load-partitioning policy
	// (default spread; see ClusterPolicies). A 1-node spread cluster
	// reproduces RunService bit-for-bit.
	ClusterDispatch string
	// TargetUtil is the consolidate policy's per-node fill level
	// (default 0.6).
	TargetUtil float64
	// ParkDrained quiesces nodes that receive no load (OS noise off,
	// package idle-state model on), letting them reach package deep
	// idle.
	ParkDrained bool
	// NodeOverride, when set, customizes node i's configuration after
	// the template is applied — the hook for heterogeneous fleets, e.g.
	// giving some nodes an EPYC() catalog or a different PlatformConfig.
	NodeOverride func(i int, cfg NodeConfig) NodeConfig
	// SharedSeeds gives every node the template seed instead of Seed+i.
	// Nodes assigned identical rate timelines then become bit-identical
	// simulations, which the scenario engine collapses into one
	// equivalence class per timeline — the fleet-scale dedup that makes
	// 100K-node scenario runs tractable. Statistical independence across
	// nodes is traded away; pair with ScenarioRun.Replicas to get seeded
	// resampling error bars instead.
	SharedSeeds bool
}

// buildFleet applies the fleet defaults and expands the per-node
// configurations — the shared front half of RunCluster and RunScenario,
// so scenario fleets can never drift from static fleets for the same
// ClusterRun. The returned ClusterRun carries the defaulted fields.
func buildFleet(r ClusterRun) (ClusterRun, []NodeConfig, error) {
	if r.Nodes < 0 {
		return r, nil, fmt.Errorf("agilewatts: negative cluster size %d", r.Nodes)
	}
	if r.Nodes == 0 {
		r.Nodes = 1
	}
	r.ServiceRun = r.ServiceRun.withDefaults()
	// The cluster dispatcher owns the rate (RateQPS is the aggregate it
	// partitions) and the scenario engine owns any schedule, so neither
	// reaches the node template. Connections/ThinkTime are carried
	// through so cluster.Validate rejects closed-loop runs with a clear
	// error (the cluster dispatcher partitions open-loop rates) instead
	// of silently simulating open-loop.
	template := r.ServiceRun.serverConfig()
	template.RatePerSec = 0
	template.Schedule = nil
	nodes := cluster.Homogeneous(r.Nodes, template)
	if r.SharedSeeds {
		for i := range nodes {
			nodes[i].Seed = template.Seed
		}
	}
	if r.NodeOverride != nil {
		for i := range nodes {
			nodes[i] = r.NodeOverride(i, nodes[i])
		}
	}
	return r, nodes, nil
}

// RunCluster simulates a fleet of per-node server simulations behind a
// cluster-level dispatcher and aggregates the results.
func RunCluster(r ClusterRun) (ClusterResult, error) {
	r, nodes, err := buildFleet(r)
	if err != nil {
		return ClusterResult{}, err
	}
	return cluster.Run(cluster.Config{
		Nodes:       nodes,
		RateQPS:     r.RateQPS,
		Dispatch:    r.ClusterDispatch,
		TargetUtil:  r.TargetUtil,
		ParkDrained: r.ParkDrained,
	})
}

// Schedule is a piecewise-linear time-varying load timeline; Phase is
// one of its segments. See the scenario package constructors re-exported
// below.
type (
	Schedule = scenario.Schedule
	Phase    = scenario.Phase
)

// Named scenario shapes accepted by NamedSchedule and ScenarioRun.Scenario.
const (
	ScenarioConstant = scenario.NameConstant
	ScenarioDiurnal  = scenario.NameDiurnal
	ScenarioSpike    = scenario.NameSpike
	ScenarioRamp     = scenario.NameRamp
)

// ScenarioNames lists the named scenario shapes.
func ScenarioNames() []string { return scenario.Names() }

// NamedSchedule builds a named scenario shape around a base rate:
// constant, diurnal (compressed sine day, trough first), spike (4x step
// over the middle fifth), or ramp (0.25x to 1.75x).
func NamedSchedule(name string, baseQPS float64, total Duration) (*Schedule, error) {
	return scenario.ByName(name, baseQPS, total)
}

// NewSchedule assembles a schedule from explicit phases (trace-like
// piecewise load).
func NewSchedule(name string, phases ...Phase) (*Schedule, error) {
	return scenario.New(name, phases...)
}

// ScenarioResult is a time-varying fleet measurement: per-epoch detail,
// per-phase aggregation, park/unpark timeline and whole-run totals.
// Classes/ReplicaRuns report the equivalence-class collapse, and CI (set
// when Replicas > 0) carries replica-ensemble 95% confidence intervals.
type ScenarioResult = cluster.ScenarioResult

// CI is a 95% confidence interval, and FleetCI the set of intervals a
// replicated scenario run attaches to its fleet-level observables
// (fleet power, QPS-per-watt, worst node p99). See ScenarioRun.Replicas.
type (
	CI      = cluster.CI
	FleetCI = cluster.FleetCI
)

// Controller is a fleet autoscaling policy evaluated at epoch
// boundaries: Observe ingests the finished epoch's telemetry (a lagging
// signal) and returns the target active node count for the next epoch.
// Select one with ScenarioElasticity.Controller — a built-in by name,
// or a custom implementation through ControllerSpec.New. FleetTelemetry
// and NodeTelemetry are what a controller observes; FleetInfo is what a
// custom factory learns about the fleet at construction.
type (
	Controller     = cluster.Controller
	ControllerSpec = cluster.ControllerSpec
	FleetTelemetry = cluster.FleetTelemetry
	NodeTelemetry  = cluster.NodeTelemetry
	FleetInfo      = cluster.FleetInfo
)

// Built-in fleet controller names accepted by ControllerSpec.Name:
// oracle replays the precomputed epoch plan (bit-for-bit the open-loop
// result), reactive follows measured utilization with a hysteresis
// deadband and cooldown, predictive forecasts the offered rate with the
// menu governor's EWMA machinery at fleet granularity.
const (
	ControllerOracle     = cluster.ControllerOracle
	ControllerReactive   = cluster.ControllerReactive
	ControllerPredictive = cluster.ControllerPredictive
)

// FleetControllers lists the built-in fleet controller names.
func FleetControllers() []string { return cluster.Controllers() }

// Fault injection: a FaultSpec on ScenarioRun.Faults describes per-node
// fault windows (NodeFault) and a cluster-level correlated fault process
// (CorrelatedFaults). The zero value is a healthy fleet and leaves every
// scenario result bit-identical to a run without fault injection.
type (
	FaultSpec        = cluster.FaultSpec
	NodeFault        = cluster.NodeFault
	CorrelatedFaults = cluster.CorrelatedFaults
)

// Fault kinds accepted by NodeFault.Kind and CorrelatedFaults.Kind:
// crash (node dark, instance discarded, cold rebuild + restart penalty),
// straggler (service times inflated by Factor > 1), thermal (turbo
// ceiling capped at base + Factor·(turbo − base), Factor in [0, 1)).
const (
	FaultCrash     = cluster.FaultCrash
	FaultStraggler = cluster.FaultStraggler
	FaultThermal   = cluster.FaultThermal
)

// FaultKinds lists the built-in fault kinds.
func FaultKinds() []string { return cluster.FaultKinds() }

// Overload admission control: an OverloadSpec on ScenarioRun.Overload
// decides what happens when the offered rate exceeds the active
// fleet's capacity (per-node capacity at MaxUtil, summed over the up,
// routed nodes). The zero value disables admission control and leaves
// every scenario result bit-identical to a run without it.
type OverloadSpec = cluster.OverloadSpec

// Overload policies accepted by OverloadSpec.Policy: shed (drop the
// excess with exact request accounting), degrade (admit everything,
// record the SLO-violation epochs), queue (carry the excess into the
// next epoch as bounded backlog).
const (
	OverloadShed    = cluster.OverloadShed
	OverloadDegrade = cluster.OverloadDegrade
	OverloadQueue   = cluster.OverloadQueue
)

// OverloadPolicies lists the built-in overload policy names.
func OverloadPolicies() []string { return cluster.OverloadPolicies() }

// ScenarioExecution groups the scenario engine-selection knobs: which
// engine runs the epochs and how much statistical machinery rides
// along.
type ScenarioExecution struct {
	// ColdEpochs selects the legacy cold-start scenario engine: every
	// epoch re-creates every node simulation from scratch (one warmup
	// per node per epoch, per-epoch mixed seeds, synthetic unpark
	// penalty). The default warm path runs each node's whole timeline on
	// one resumable instance — a single warmup per scenario, real
	// park/unpark transitions, and one pipelined task per node.
	ColdEpochs bool
	// Replicas adds K seeded statistical replicas per timeline
	// equivalence class: each class's representative is re-simulated K
	// times under seeds drawn from a reserved plane disjoint from every
	// node and epoch seed, and the result gains 95% confidence intervals
	// (ScenarioResult.CI, EpochResult.CI) over fleet power, QPS-per-watt
	// and worst p99. Point estimates are untouched — K=0 and K>0 report
	// bit-identical central values. Warm path only. Replicas pay off with
	// SharedSeeds, where a class stands for many nodes; on a
	// distinct-seed fleet every class is a singleton and replicas only
	// add cost.
	Replicas int
	// CompactNodes drops per-node detail (Fleet.Nodes stays nil) and
	// aggregates each epoch in O(classes) instead of O(nodes) — the mode
	// that makes 100K-node fleets run in seconds when SharedSeeds
	// collapses them to a handful of classes. Fleet-level sums, counts
	// and weighted p99-spread quantiles are computed over the class
	// multiset; sums reassociate, so they can differ from the expanded
	// path in the last ulps when a class has multiplicity > 1. Warm path
	// only.
	CompactNodes bool
}

// ScenarioElasticity groups the fleet elasticity knobs: what a
// park/unpark transition costs, and which control plane decides when to
// make one.
type ScenarioElasticity struct {
	// UnparkLatencyNS / UnparkPowerW parameterize the cold path's
	// synthetic penalty a parked node pays when load returns to it
	// (defaults 1ms / 30W; zero means "default" — set UnparkFree for an
	// explicitly free unpark). The warm path simulates the transition
	// instead and ignores both.
	UnparkLatencyNS Duration
	UnparkPowerW    float64
	// UnparkFree makes cold-path unparks explicitly free (both
	// penalties zero), which the zero values above cannot express.
	UnparkFree bool
	// Controller selects the fleet autoscaling policy. The zero value
	// keeps the open-loop plan (the schedule decides everything up
	// front); a named or custom controller re-decides the active node
	// count every epoch from the previous epoch's telemetry. Warm path
	// only.
	Controller ControllerSpec
}

// ScenarioRun describes one time-varying fleet simulation: the embedded
// ClusterRun supplies the fleet (nodes, platform, service, policy), and
// the schedule replaces its static RateQPS. Every EpochNS the cluster
// dispatcher re-partitions the current window's mean rate, parking and
// unparking nodes as the load moves. Execution selects and tunes the
// engine; Elasticity prices and controls the park/unpark transitions.
type ScenarioRun struct {
	ClusterRun
	// Scenario names a built-in shape built around RateQPS as the base
	// rate (see ScenarioNames). Ignored when Schedule is set.
	Scenario string
	// Schedule, when non-nil, is the explicit load timeline.
	Schedule *Schedule
	// TotalNS is the scenario length for named shapes (default: the
	// node measurement window, DurationNS).
	TotalNS Duration
	// EpochNS is the re-dispatch interval (default: one epoch spanning
	// the whole schedule).
	EpochNS Duration
	// Execution groups the engine-selection knobs (cold vs warm engine,
	// replicas, compact aggregation).
	Execution ScenarioExecution
	// Elasticity groups the unpark-cost and autoscaling knobs.
	Elasticity ScenarioElasticity
	// Faults injects node- and cluster-level faults into the run:
	// crash/restart cycles, stragglers, thermal throttling, and a seeded
	// correlated fault process. Warm path only; the zero value is a
	// healthy fleet, bit-identical to a run without fault injection.
	Faults FaultSpec
	// Overload enables per-epoch admission control when the offered
	// load exceeds the active fleet's capacity: shed, degrade or queue
	// the excess (see OverloadSpec). Warm path only; the zero value
	// disables it, bit-identical to a run without admission control.
	Overload OverloadSpec

	// UnparkLatencyNS is the cold path's synthetic unpark latency.
	//
	// Deprecated: set Elasticity.UnparkLatencyNS. This shim maps into
	// the group (the group wins when both are set) and will be removed
	// after one release of compatibility.
	UnparkLatencyNS Duration
	// UnparkPowerW is the cold path's synthetic unpark power.
	//
	// Deprecated: set Elasticity.UnparkPowerW. This shim maps into the
	// group (the group wins when both are set) and will be removed after
	// one release of compatibility.
	UnparkPowerW float64
	// UnparkFree makes cold-path unparks explicitly free.
	//
	// Deprecated: set Elasticity.UnparkFree. The flags are OR-ed during
	// the compatibility release; this shim will then be removed.
	UnparkFree bool
	// ColdEpochs selects the legacy cold-start scenario engine.
	//
	// Deprecated: set Execution.ColdEpochs. The flags are OR-ed during
	// the compatibility release; this shim will then be removed.
	ColdEpochs bool
	// Replicas adds K seeded replicas per timeline class.
	//
	// Deprecated: set Execution.Replicas. This shim maps into the group
	// (the group wins when both are set) and will be removed after one
	// release of compatibility.
	Replicas int
	// CompactNodes drops per-node detail from the results.
	//
	// Deprecated: set Execution.CompactNodes. The flags are OR-ed during
	// the compatibility release; this shim will then be removed.
	CompactNodes bool
}

// normalized folds the deprecated flat shims into the grouped fields:
// a set group field wins over its shim, boolean flags are OR-ed, so
// callers migrating field-by-field never lose a knob.
func (r ScenarioRun) normalized() (ScenarioExecution, ScenarioElasticity) {
	ex, el := r.Execution, r.Elasticity
	ex.ColdEpochs = ex.ColdEpochs || r.ColdEpochs
	if ex.Replicas == 0 {
		ex.Replicas = r.Replicas
	}
	ex.CompactNodes = ex.CompactNodes || r.CompactNodes
	if el.UnparkLatencyNS == 0 {
		el.UnparkLatencyNS = r.UnparkLatencyNS
	}
	if el.UnparkPowerW == 0 {
		el.UnparkPowerW = r.UnparkPowerW
	}
	el.UnparkFree = el.UnparkFree || r.UnparkFree
	return ex, el
}

// scenarioConfig maps the run description onto the cluster scenario
// configuration — the shared front half of RunScenario and
// ValidateScenario, so validation can never drift from execution.
func scenarioConfig(r ScenarioRun) (cluster.ScenarioConfig, error) {
	run, nodes, err := buildFleet(r.ClusterRun)
	if err != nil {
		return cluster.ScenarioConfig{}, err
	}
	sched := r.Schedule
	if sched == nil {
		name := r.Scenario
		if name == "" {
			name = ScenarioDiurnal
		}
		total := r.TotalNS
		if total == 0 {
			total = run.DurationNS
		}
		if total == 0 {
			total = 500 * sim.Millisecond // server.Config default duration
		}
		sched, err = scenario.ByName(name, run.RateQPS, total)
		if err != nil {
			return cluster.ScenarioConfig{}, err
		}
	}
	ex, el := r.normalized()
	// The template's Duration is irrelevant here: the scenario engine
	// assigns every node its epoch window length per epoch.
	return cluster.ScenarioConfig{
		Nodes:         nodes,
		Schedule:      sched,
		Epoch:         r.EpochNS,
		Dispatch:      run.ClusterDispatch,
		TargetUtil:    run.TargetUtil,
		ParkDrained:   run.ParkDrained,
		ColdEpochs:    ex.ColdEpochs,
		UnparkLatency: el.UnparkLatencyNS,
		UnparkPowerW:  el.UnparkPowerW,
		UnparkFree:    el.UnparkFree,
		Controller:    el.Controller,
		Replicas:      ex.Replicas,
		CompactNodes:  ex.CompactNodes,
		Faults:        r.Faults,
		Overload:      r.Overload,
	}, nil
}

// RunScenario simulates a fleet under time-varying load with
// epoch-stepped re-dispatch.
func RunScenario(r ScenarioRun) (ScenarioResult, error) {
	cfg, err := scenarioConfig(r)
	if err != nil {
		return ScenarioResult{}, err
	}
	return cluster.RunScenario(cfg)
}

// ValidateScenario rejects an unusable run description without
// simulating anything. It shares RunScenario's exact mapping and
// Normalize pass, so a description rejected here fails RunScenario with
// the identical error — the guarantee the CLIs rely on to refuse an
// invalid -scenario-file before any partial run.
func ValidateScenario(r ScenarioRun) error {
	cfg, err := scenarioConfig(r)
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// ServiceInstance is a resumable single-server simulation: built once,
// then advanced interval by interval with RunInterval(window, rate),
// carrying engine time, C-state residency, queues, RNG streams and
// collector state across calls — the building block of the warm
// scenario path. IntervalResult is one interval's measurement.
type (
	ServiceInstance = server.Instance
	IntervalResult  = server.IntervalResult
)

// NewServiceInstance constructs a resumable simulation from the run
// description. RateQPS, DurationNS and Schedule are ignored — every
// RunInterval brings its own window and rate; WarmupNS is paid once,
// inside the first interval. parkOnZeroRate makes zero-rate intervals
// quiesce the node into package deep idle.
func NewServiceInstance(r ServiceRun, parkOnZeroRate bool) (*ServiceInstance, error) {
	// NewInstance itself ignores rate/schedule/duration (every interval
	// brings its own), so the full mapping is safe to hand over.
	return server.NewInstance(r.withDefaults().serverConfig(), parkOnZeroRate)
}

// RunnerStats reports the shared sweep executor's memoization counters
// (cache hits and misses; uncacheable runs count as misses). Timeline
// runs of the warm scenario path are included alongside one-shot
// simulations, so sweep-level memoization wins are observable.
func RunnerStats() (hits, misses uint64) { return runner.Default().Stats() }

// RunnerDedupStats reports the shared executor's equivalence-class
// counters across warm scenario runs: nodes planned, timeline classes
// actually simulated, and replica runs added for error bars. A large
// nodes-to-classes ratio is the class-dedup win (see
// ClusterRun.SharedSeeds).
func RunnerDedupStats() (nodes, classes, replicaRuns uint64) {
	return runner.Default().ClassStats()
}

// Experiment names accepted by RunExperiment.
const (
	ExpTable1     = "table1"
	ExpTable2     = "table2"
	ExpTable3     = "table3"
	ExpTable4     = "table4"
	ExpTable5     = "table5"
	ExpMotivation = "motivation"
	ExpLatency    = "latency"
	ExpFigure8    = "figure8"
	ExpFigure9    = "figure9"
	ExpFigure10   = "figure10"
	ExpFigure11   = "figure11"
	ExpFigure12   = "figure12"
	ExpFigure13   = "figure13"
	ExpValidation = "validation"
	ExpSnoop      = "snoop"
	// Extensions beyond the paper's figures:
	ExpAMD            = "amd"             // Sec. 5.5 EPYC analysis
	ExpAblateGovernor = "ablate-governor" // idle-policy ablation
	ExpAblateZones    = "ablate-zones"    // UFPG zone-count ablation
	ExpAblatePower    = "ablate-power"    // C6A power-budget sensitivity
	ExpAblateNoise    = "ablate-noise"    // OS-noise sensitivity
	ExpRaceToHalt     = "racetohalt"      // Sec. 8: race-to-halt vs DVFS pacing
	ExpPkgIdle        = "pkgidle"         // AgilePkgC-direction package state
	ExpBreakdown      = "breakdown"       // wake/queue/service latency decomposition
	ExpProportion     = "proportionality" // Sec. 7.1 energy-proportionality framing
	ExpDispatch       = "dispatch"        // dispatch-policy power/tail trade-off
	ExpCluster        = "cluster"         // fleet spread-vs-consolidate study
	ExpScenario       = "scenario"        // time-varying load: diurnal/spike fleet study
	ExpFaults         = "faults"          // fault injection: oracle vs reactive under crash-under-spike
	ExpOverload       = "overload"        // admission control: shed vs degrade vs queue past capacity
)

// Experiments returns all experiment names in stable order.
func Experiments() []string {
	names := []string{
		ExpTable1, ExpTable2, ExpTable3, ExpTable4, ExpTable5,
		ExpMotivation, ExpLatency,
		ExpFigure8, ExpFigure9, ExpFigure10, ExpFigure11, ExpFigure12, ExpFigure13,
		ExpValidation, ExpSnoop,
		ExpAMD, ExpAblateGovernor, ExpAblateZones, ExpAblatePower, ExpAblateNoise,
		ExpRaceToHalt, ExpPkgIdle, ExpBreakdown, ExpProportion, ExpDispatch,
		ExpCluster, ExpScenario, ExpFaults, ExpOverload,
	}
	sort.Strings(names)
	return names
}

// DefaultOptions returns full-fidelity experiment settings.
func DefaultOptions() Options { return experiments.DefaultOptions() }

// QuickOptions returns fast low-fidelity settings.
func QuickOptions() Options { return experiments.QuickOptions() }

// RunExperiment regenerates the named table/figure and writes its
// report(s) to w.
func RunExperiment(name string, o Options, w io.Writer) error {
	render := func(tables ...*report.Table) error {
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		return nil
	}
	switch name {
	case ExpTable1:
		return render(experiments.Table1().Table())
	case ExpTable2:
		return render(experiments.Table2())
	case ExpTable3:
		return render(experiments.Table3().Table())
	case ExpTable4:
		return render(experiments.Table4())
	case ExpTable5:
		r, err := experiments.Table5(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpMotivation:
		return render(experiments.Motivation().Table())
	case ExpLatency:
		return render(experiments.TransitionLatency().Table())
	case ExpFigure8:
		r, err := experiments.Figure8(o)
		if err != nil {
			return err
		}
		return render(r.ResidencyTable(), r.SavingsTable(), r.DegradationTable(), r.ScalabilityTable())
	case ExpFigure9:
		r, err := experiments.Figure9(o)
		if err != nil {
			return err
		}
		return render(r.LatencyTable(), r.PowerTable(), r.ResidencyTable())
	case ExpFigure10:
		r, err := experiments.Figure10(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpFigure11:
		r, err := experiments.Figure11(o)
		if err != nil {
			return err
		}
		return render(r.Table(), r.TurboFractionTable())
	case ExpFigure12:
		r, err := experiments.Figure12(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpFigure13:
		r, err := experiments.Figure13(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpValidation:
		return render(experiments.Validation(o).Table())
	case ExpSnoop:
		return render(experiments.SnoopImpact().Table())
	case ExpAMD:
		r, err := experiments.AMD(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpAblateGovernor:
		r, err := experiments.GovernorAblation(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpAblateZones:
		return render(experiments.ZoneAblation().Table())
	case ExpAblatePower:
		return render(experiments.PowerBudgetAblation().Table())
	case ExpAblateNoise:
		r, err := experiments.NoiseAblation(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpRaceToHalt:
		r, err := experiments.RaceToHalt(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpPkgIdle:
		r, err := experiments.PkgIdle(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpBreakdown:
		r, err := experiments.Breakdown(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpProportion:
		r, err := experiments.Proportionality(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpDispatch:
		r, err := experiments.Dispatch(o)
		if err != nil {
			return err
		}
		return render(r.Table(), r.ResidencyTable())
	case ExpCluster:
		r, err := experiments.Cluster(o)
		if err != nil {
			return err
		}
		return render(r.Table(), r.CostTable())
	case ExpScenario:
		r, err := experiments.Scenario(o)
		if err != nil {
			return err
		}
		c, err := experiments.ScenarioControllers(o)
		if err != nil {
			return err
		}
		return render(r.PhaseTable(), r.EpochTable(), c.ControllerTable())
	case ExpFaults:
		r, err := experiments.Faults(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	case ExpOverload:
		r, err := experiments.Overload(o)
		if err != nil {
			return err
		}
		return render(r.Table())
	default:
		return fmt.Errorf("agilewatts: unknown experiment %q (known: %v)", name, Experiments())
	}
}
