package agilewatts

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestRunServiceDefaults(t *testing.T) {
	res, err := RunService(ServiceRun{RateQPS: 50_000, DurationNS: 100_000_000, WarmupNS: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedPerSec < 40_000 {
		t.Fatalf("throughput %v too low", res.CompletedPerSec)
	}
	if res.AvgCorePowerW <= 0 {
		t.Fatal("no power measured")
	}
}

func TestHeadlineClaim(t *testing.T) {
	// The abstract: AW reduces Memcached energy by up to 71% (35% on
	// average) with <1% end-to-end performance degradation. Check the
	// direction and the <1% bound at one representative point.
	base, err := RunService(ServiceRun{
		Platform: Baseline, RateQPS: 100_000,
		DurationNS: 150_000_000, WarmupNS: 15_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	aw, err := RunService(ServiceRun{
		Platform: AW, RateQPS: 100_000,
		DurationNS: 150_000_000, WarmupNS: 15_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	saving := (base.AvgCorePowerW - aw.AvgCorePowerW) / base.AvgCorePowerW
	if saving < 0.2 {
		t.Errorf("power saving %.1f%% below 20%%", saving*100)
	}
	deg := (aw.EndToEnd.AvgUS - base.EndToEnd.AvgUS) / base.EndToEnd.AvgUS
	if deg > 0.01 {
		t.Errorf("end-to-end degradation %.2f%% above 1%%", deg*100)
	}
}

func TestRunClusterOneNodeMatchesRunService(t *testing.T) {
	// The public-API version of the superset guarantee: a 1-node spread
	// cluster is RunService, bit for bit.
	run := ServiceRun{RateQPS: 120_000, DurationNS: 100_000_000, WarmupNS: 10_000_000}
	single, err := RunService(run)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := RunCluster(ClusterRun{ServiceRun: run, Nodes: 1, ClusterDispatch: ClusterSpread})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fleet.Nodes[0].Result, single) {
		t.Error("RunCluster(1 node, spread) diverged from RunService")
	}
	if fleet.FleetPowerW != single.PackagePowerW || fleet.Server != single.Server {
		t.Error("fleet aggregates are not the single node's values")
	}
}

func TestRunClusterHeterogeneousOverride(t *testing.T) {
	res, err := RunCluster(ClusterRun{
		ServiceRun:      ServiceRun{RateQPS: 200_000, DurationNS: 80_000_000, WarmupNS: 10_000_000},
		Nodes:           2,
		ClusterDispatch: ClusterLeastLoaded,
		NodeOverride: func(i int, cfg NodeConfig) NodeConfig {
			if i == 1 {
				cfg.Cores = 40 // one big node
			}
			return cfg
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[1].RateQPS <= res.Nodes[0].RateQPS {
		t.Errorf("least-loaded did not favor the bigger node: %v vs %v",
			res.Nodes[1].RateQPS, res.Nodes[0].RateQPS)
	}
	if EPYC().Params(C6).PowerWatts < 0 {
		t.Fatal("EPYC catalog not exposed")
	}
}

func TestSharedSeedScenarioCollapsesAndReportsCI(t *testing.T) {
	// The public 100K story in miniature: a shared-seed spread fleet
	// collapses to one timeline equivalence class, replicas attach 95%
	// CIs, and the dedup is observable through RunnerDedupStats.
	n0, c0, r0 := RunnerDedupStats()
	res, err := RunScenario(ScenarioRun{
		ClusterRun: ClusterRun{
			ServiceRun: ServiceRun{
				RateQPS: 16 * 300e3, WarmupNS: 5_000_000, Seed: 7,
			},
			Nodes:           16,
			ClusterDispatch: ClusterSpread,
			SharedSeeds:     true,
		},
		Scenario:     ScenarioDiurnal,
		TotalNS:      40_000_000,
		EpochNS:      10_000_000,
		Replicas:     2,
		CompactNodes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Classes != 1 {
		t.Errorf("classes = %d, want 1 (shared seeds + spread must collapse)", res.Classes)
	}
	if res.ReplicaRuns != 2 {
		t.Errorf("replica runs = %d, want 2", res.ReplicaRuns)
	}
	if res.CI == nil || res.CI.Samples != 3 {
		t.Fatalf("CI = %+v, want 3-sample ensemble", res.CI)
	}
	if res.CI.FleetPowerW.Lo > res.CI.FleetPowerW.Hi {
		t.Errorf("inverted CI %+v", res.CI.FleetPowerW)
	}
	for _, ep := range res.Epochs {
		if ep.Fleet.Nodes != nil {
			t.Fatal("CompactNodes kept per-node detail")
		}
		if ep.CI == nil {
			t.Fatalf("epoch %d has no CI", ep.Epoch)
		}
		if ep.Fleet.ActiveNodes+ep.Fleet.IdleNodes != 16 {
			t.Fatalf("epoch %d node accounting: %d active + %d idle != 16",
				ep.Epoch, ep.Fleet.ActiveNodes, ep.Fleet.IdleNodes)
		}
	}
	n1, c1, r1 := RunnerDedupStats()
	if n1-n0 != 16 || c1-c0 != 1 || r1-r0 != 2 {
		t.Errorf("dedup stats delta = %d nodes / %d classes / %d replicas, want 16/1/2",
			n1-n0, c1-c0, r1-r0)
	}
}

func TestRunClusterRejectsClosedLoop(t *testing.T) {
	// The cluster dispatcher partitions open-loop rates; a closed-loop
	// template must be rejected loudly, not silently run open-loop.
	_, err := RunCluster(ClusterRun{
		ServiceRun: ServiceRun{Connections: 100, RateQPS: 100_000},
		Nodes:      2,
	})
	if err == nil {
		t.Fatal("closed-loop cluster template accepted")
	}
	if _, err := RunCluster(ClusterRun{Nodes: -2, ServiceRun: ServiceRun{RateQPS: 1}}); err == nil {
		t.Fatal("negative cluster size accepted")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	opts := QuickOptions()
	for _, name := range Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunExperiment(name, opts, &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("nope", QuickOptions(), &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestConfigLookups(t *testing.T) {
	if len(Configs()) < 10 {
		t.Fatal("missing named configs")
	}
	c, err := ConfigByName("AW")
	if err != nil || !c.AgileWatts {
		t.Fatalf("AW lookup: %+v %v", c, err)
	}
	if _, err := ServiceByName("mysql"); err != nil {
		t.Fatal(err)
	}
}

func TestArchitectureExposed(t *testing.T) {
	arch := NewArchitecture()
	lo, hi := arch.C6APowerRange()
	if lo <= 0 || hi <= lo {
		t.Fatal("bad C6A power range")
	}
	if Skylake().Params(C6A).PowerWatts != 0.30 {
		t.Fatal("catalog C6A power wrong")
	}
}

func TestExperimentOutputsMentionPaperArtifacts(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(ExpTable3, QuickOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"UFPG", "CCSM", "ADPLL", "FIVR", "Overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}
