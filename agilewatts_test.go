package agilewatts

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunServiceDefaults(t *testing.T) {
	res, err := RunService(ServiceRun{RateQPS: 50_000, DurationNS: 100_000_000, WarmupNS: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedPerSec < 40_000 {
		t.Fatalf("throughput %v too low", res.CompletedPerSec)
	}
	if res.AvgCorePowerW <= 0 {
		t.Fatal("no power measured")
	}
}

func TestHeadlineClaim(t *testing.T) {
	// The abstract: AW reduces Memcached energy by up to 71% (35% on
	// average) with <1% end-to-end performance degradation. Check the
	// direction and the <1% bound at one representative point.
	base, err := RunService(ServiceRun{
		Platform: Baseline, RateQPS: 100_000,
		DurationNS: 150_000_000, WarmupNS: 15_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	aw, err := RunService(ServiceRun{
		Platform: AW, RateQPS: 100_000,
		DurationNS: 150_000_000, WarmupNS: 15_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	saving := (base.AvgCorePowerW - aw.AvgCorePowerW) / base.AvgCorePowerW
	if saving < 0.2 {
		t.Errorf("power saving %.1f%% below 20%%", saving*100)
	}
	deg := (aw.EndToEnd.AvgUS - base.EndToEnd.AvgUS) / base.EndToEnd.AvgUS
	if deg > 0.01 {
		t.Errorf("end-to-end degradation %.2f%% above 1%%", deg*100)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	opts := QuickOptions()
	for _, name := range Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := RunExperiment(name, opts, &buf); err != nil {
				t.Fatal(err)
			}
			if buf.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("nope", QuickOptions(), &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestConfigLookups(t *testing.T) {
	if len(Configs()) < 10 {
		t.Fatal("missing named configs")
	}
	c, err := ConfigByName("AW")
	if err != nil || !c.AgileWatts {
		t.Fatalf("AW lookup: %+v %v", c, err)
	}
	if _, err := ServiceByName("mysql"); err != nil {
		t.Fatal(err)
	}
}

func TestArchitectureExposed(t *testing.T) {
	arch := NewArchitecture()
	lo, hi := arch.C6APowerRange()
	if lo <= 0 || hi <= lo {
		t.Fatal("bad C6A power range")
	}
	if Skylake().Params(C6A).PowerWatts != 0.30 {
		t.Fatal("catalog C6A power wrong")
	}
}

func TestExperimentOutputsMentionPaperArtifacts(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment(ExpTable3, QuickOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"UFPG", "CCSM", "ADPLL", "FIVR", "Overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("table3 output missing %q", want)
		}
	}
}
