package agilewatts

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"
)

// The scenario goldens extend TestGoldenPipelineStability to the
// time-varying engine: named scenario configs are pinned as exact
// hex-float fingerprints on both execution paths — the legacy cold
// engine (ColdEpochs, fingerprints unchanged since the scenario
// engine's introduction) and the warm resumable-instance engine
// (fingerprints captured when it landed) — and the degenerate constant
// schedule is asserted to reproduce the stationary simulator
// bit-for-bit at both the server and the cluster level.
//
// Regenerate with:
//
//	GOLDEN_PRINT=1 go test -run TestGoldenScenarioStability -v .
//
// only when an intentional model change alters the output — never to
// absorb an optimization's drift.

// goldenScenarioCases must produce the exact fingerprints in
// goldenScenarioWant. Small fleets and short windows keep them fast;
// every engine feature is on (consolidate, parking, epoch stepping,
// unpark transitions — synthetic on the cold path, simulated on the
// warm path).
var goldenScenarioCases = []struct {
	name string
	run  ScenarioRun
}{
	{"diurnal-3node-consolidate", ScenarioRun{
		ClusterRun: ClusterRun{
			ServiceRun: ServiceRun{
				Platform: AW, RateQPS: 1800e3,
				DurationNS: 60_000_000, WarmupNS: 5_000_000, Seed: 5,
			},
			Nodes:           3,
			ClusterDispatch: ClusterConsolidate,
			ParkDrained:     true,
		},
		Scenario:   ScenarioDiurnal,
		TotalNS:    60_000_000,
		EpochNS:    15_000_000,
		ColdEpochs: true,
	}},
	{"spike-2node-spread-bursty", ScenarioRun{
		ClusterRun: ClusterRun{
			ServiceRun: ServiceRun{
				Platform: Baseline, RateQPS: 300e3,
				DurationNS: 60_000_000, WarmupNS: 5_000_000, Seed: 9,
				LoadGen: LoadBursty,
			},
			Nodes:           2,
			ClusterDispatch: ClusterSpread,
		},
		Scenario:   ScenarioSpike,
		TotalNS:    60_000_000,
		EpochNS:    20_000_000,
		ColdEpochs: true,
	}},
	{"warm-diurnal-3node-consolidate", ScenarioRun{
		ClusterRun: ClusterRun{
			ServiceRun: ServiceRun{
				Platform: AW, RateQPS: 1800e3,
				DurationNS: 60_000_000, WarmupNS: 5_000_000, Seed: 5,
			},
			Nodes:           3,
			ClusterDispatch: ClusterConsolidate,
			ParkDrained:     true,
		},
		Scenario: ScenarioDiurnal,
		TotalNS:  60_000_000,
		EpochNS:  15_000_000,
	}},
	{"warm-spike-2node-spread-bursty", ScenarioRun{
		ClusterRun: ClusterRun{
			ServiceRun: ServiceRun{
				Platform: Baseline, RateQPS: 300e3,
				DurationNS: 60_000_000, WarmupNS: 5_000_000, Seed: 9,
				LoadGen: LoadBursty,
			},
			Nodes:           2,
			ClusterDispatch: ClusterSpread,
		},
		Scenario: ScenarioSpike,
		TotalNS:  60_000_000,
		EpochNS:  20_000_000,
	}},
}

// goldenScenarioWant maps case name to the exact fingerprint, captured
// by a GOLDEN_PRINT run at the scenario engine's introduction.
var goldenScenarioWant = map[string]string{
	"diurnal-3node-consolidate":      "sched=diurnal disp=consolidate epoch=15000000 total=60000000 unparks=1 energy=0x1.37dbedb75f712p+03 avgw=0x1.44da6cf458c08p+07 qps=0x1.b5e2f55555556p+20 qpw=0x1.591361f2145a6p+13 worstp99=0x1.f4p+09 timeline=[2 1 1 2] e0[0-15000000,h01,unp=0] e0.rate=0x1.13726dac987a7p+20 e0.w=0x1.e0fcaf472d4edp+06 e0.qps=0x1.1233d55555556p+20 e0.p99=0x1.c7p+06 e0.upj=0x0p+00 e1[15000000-30000000,h04,unp=1] e1.rate=0x1.2dbac929b3c2bp+21 e1.w=0x1.9b64f87fca8b4p+07 e1.qps=0x1.2d5ep+21 e1.p99=0x1.f4p+09 e1.upj=0x1.eb851eb851eb8p-06 e2[30000000-45000000,h07,unp=0] e2.rate=0x1.2dbac929b3c2dp+21 e2.w=0x1.9552c63007d8cp+07 e2.qps=0x1.2bfdeaaaaaaabp+21 e2.p99=0x1.a3p+07 e2.upj=0x0p+00 e3[45000000-60000000,h10,unp=0] e3.rate=0x1.13726dac987a7p+20 e3.w=0x1.e4673afbf3ed5p+06 e3.qps=0x1.12a02aaaaaaabp+20 e3.p99=0x1.b3p+07 e3.upj=0x0p+00 ph[h01,n=1,t=15000000] ph.h01.rate=0x1.13726dac987a7p+20 ph.h01.w=0x1.e0fcaf472d4edp+06 ph.h01.p99=0x1.c7p+06 ph.h01.parked=0x1p+01 ph[h04,n=1,t=15000000] ph.h04.rate=0x1.2dbac929b3c2ap+21 ph.h04.w=0x1.9b64f87fca8b4p+07 ph.h04.p99=0x1.f4p+09 ph.h04.parked=0x1p+00 ph[h07,n=1,t=15000000] ph.h07.rate=0x1.2dbac929b3c2dp+21 ph.h07.w=0x1.9552c63007d8cp+07 ph.h07.p99=0x1.a3p+07 ph.h07.parked=0x1p+00 ph[h10,n=1,t=15000000] ph.h10.rate=0x1.13726dac987a7p+20 ph.h10.w=0x1.e4673afbf3ed5p+06 ph.h10.p99=0x1.b3p+07 ph.h10.parked=0x1p+01",
	"spike-2node-spread-bursty":      "sched=spike disp=spread epoch=20000000 total=60000000 unparks=0 energy=0x1.d4f88555842b1p+02 avgw=0x1.e882e03914579p+06 qps=0x1.f0a18p+18 qpw=0x1.044148dd4be1ep+12 worstp99=0x1.69p+07 timeline=[0 0 0] e0[0-20000000,pre,unp=0] e0.rate=0x1.24f8p+18 e0.w=0x1.c967810f486adp+06 e0.qps=0x1.4bfb8p+18 e0.p99=0x1.e5p+06 e0.upj=0x0p+00 e1[20000000-40000000,spike,unp=0] e1.rate=0x1.9a28p+19 e1.w=0x1.0e97027b0c8bp+07 e1.qps=0x1.80d6cp+19 e1.p99=0x1.69p+07 e1.upj=0x0p+00 e2[40000000-60000000,post,unp=0] e2.rate=0x1.24f8p+18 e2.w=0x1.d2f31aa5db85ep+06 e2.qps=0x1.843b8p+18 e2.p99=0x1.0fp+07 e2.upj=0x0p+00 ph[pre,n=1,t=20000000] ph.pre.rate=0x1.24f8p+18 ph.pre.w=0x1.c967810f486adp+06 ph.pre.p99=0x1.e5p+06 ph.pre.parked=0x0p+00 ph[spike,n=1,t=20000000] ph.spike.rate=0x1.9a28p+19 ph.spike.w=0x1.0e97027b0c8bp+07 ph.spike.p99=0x1.69p+07 ph.spike.parked=0x0p+00 ph[post,n=1,t=20000000] ph.post.rate=0x1.24f8p+18 ph.post.w=0x1.d2f31aa5db85dp+06 ph.post.p99=0x1.0fp+07 ph.post.parked=0x0p+00",
	"warm-diurnal-3node-consolidate": "sched=diurnal disp=consolidate epoch=15000000 total=60000000 unparks=1 energy=0x1.23db41679bed1p+03 avgw=0x1.30046421426c5p+07 qps=0x1.b4f78aaaaaaabp+20 qpw=0x1.6ff38ff3c402p+13 worstp99=0x1.a1p+08 timeline=[2 1 1 2] e0[0-15000000,h01,unp=0] e0.rate=0x1.13726dac987a7p+20 e0.w=0x1.e0fcaf472d4edp+06 e0.qps=0x1.1233d55555556p+20 e0.p99=0x1.c7p+06 e0.upj=0x0p+00 e1[15000000-30000000,h04,unp=1] e1.rate=0x1.2dbac929b3c2bp+21 e1.w=0x1.82263b99952f8p+07 e1.qps=0x1.2b296aaaaaaabp+21 e1.p99=0x1.a1p+08 e1.upj=0x0p+00 e2[30000000-45000000,h07,unp=0] e2.rate=0x1.2dbac929b3c2dp+21 e2.w=0x1.73428976f585cp+07 e2.qps=0x1.2cc5eaaaaaaabp+21 e2.p99=0x1.71p+08 e2.upj=0x0p+00 e3[45000000-60000000,h10,unp=0] e3.rate=0x1.13726dac987a7p+20 e3.w=0x1.b454e7a1d0a8cp+06 e3.qps=0x1.11cbaaaaaaaabp+20 e3.p99=0x1.dbp+06 e3.upj=0x0p+00 ph[h01,n=1,t=15000000] ph.h01.rate=0x1.13726dac987a7p+20 ph.h01.w=0x1.e0fcaf472d4edp+06 ph.h01.p99=0x1.c7p+06 ph.h01.parked=0x1p+01 ph[h04,n=1,t=15000000] ph.h04.rate=0x1.2dbac929b3c2ap+21 ph.h04.w=0x1.82263b99952f8p+07 ph.h04.p99=0x1.a1p+08 ph.h04.parked=0x1p+00 ph[h07,n=1,t=15000000] ph.h07.rate=0x1.2dbac929b3c2dp+21 ph.h07.w=0x1.73428976f585cp+07 ph.h07.p99=0x1.71p+08 ph.h07.parked=0x1p+00 ph[h10,n=1,t=15000000] ph.h10.rate=0x1.13726dac987a7p+20 ph.h10.w=0x1.b454e7a1d0a8cp+06 ph.h10.p99=0x1.dbp+06 ph.h10.parked=0x1p+01",
	"warm-spike-2node-spread-bursty": "sched=spike disp=spread epoch=20000000 total=60000000 unparks=0 energy=0x1.bc8896f0cb814p+02 avgw=0x1.cf0e47e57ea6ap+06 qps=0x1.75b2aaaaaaaabp+18 qpw=0x1.9d3278d3f054ep+11 worstp99=0x1.51p+07 timeline=[0 0 0] e0[0-20000000,pre,unp=0] e0.rate=0x1.24f8p+18 e0.w=0x1.c967810f486adp+06 e0.qps=0x1.4bfb8p+18 e0.p99=0x1.e5p+06 e0.upj=0x0p+00 e1[20000000-40000000,spike,unp=0] e1.rate=0x1.9a28p+19 e1.w=0x1.ea6faf96e8224p+06 e1.qps=0x1.0728cp+19 e1.p99=0x1.51p+07 e1.upj=0x0p+00 e2[40000000-60000000,post,unp=0] e2.rate=0x1.24f8p+18 e2.w=0x1.b953a70a4b66cp+06 e2.qps=0x1.06cbp+18 e2.p99=0x1.05p+07 e2.upj=0x0p+00 ph[pre,n=1,t=20000000] ph.pre.rate=0x1.24f8p+18 ph.pre.w=0x1.c967810f486adp+06 ph.pre.p99=0x1.e5p+06 ph.pre.parked=0x0p+00 ph[spike,n=1,t=20000000] ph.spike.rate=0x1.9a28p+19 ph.spike.w=0x1.ea6faf96e8224p+06 ph.spike.p99=0x1.51p+07 ph.spike.parked=0x0p+00 ph[post,n=1,t=20000000] ph.post.rate=0x1.24f8p+18 ph.post.w=0x1.b953a70a4b66cp+06 ph.post.p99=0x1.05p+07 ph.post.parked=0x0p+00",
}

// scenarioFingerprint serializes every float-valued observable of a
// ScenarioResult exactly (hex floats, full epoch and phase detail).
func scenarioFingerprint(res ScenarioResult) string {
	var b strings.Builder
	f := func(k string, v float64) { fmt.Fprintf(&b, "%s=%s ", k, hexF(v)) }
	fmt.Fprintf(&b, "sched=%s disp=%s epoch=%d total=%d unparks=%d ",
		res.Schedule, res.Dispatch, res.Epoch, res.TotalTime, res.Unparks)
	f("energy", res.FleetEnergyJ)
	f("avgw", res.AvgFleetPowerW)
	f("qps", res.CompletedPerSec)
	f("qpw", res.QPSPerWatt)
	f("worstp99", res.WorstP99US)
	fmt.Fprintf(&b, "timeline=%v ", res.ParkedTimeline)
	for _, ep := range res.Epochs {
		fmt.Fprintf(&b, "e%d[%d-%d,%s,unp=%d] ", ep.Epoch, ep.Start, ep.End, ep.Phase, ep.Unparked)
		f(fmt.Sprintf("e%d.rate", ep.Epoch), ep.RateQPS)
		f(fmt.Sprintf("e%d.w", ep.Epoch), ep.Fleet.FleetPowerW)
		f(fmt.Sprintf("e%d.qps", ep.Epoch), ep.Fleet.CompletedPerSec)
		f(fmt.Sprintf("e%d.p99", ep.Epoch), ep.Fleet.WorstP99US)
		f(fmt.Sprintf("e%d.upj", ep.Epoch), ep.UnparkEnergyJ)
	}
	for _, p := range res.Phases {
		fmt.Fprintf(&b, "ph[%s,n=%d,t=%d] ", p.Phase, p.Epochs, p.Time)
		f("ph."+p.Phase+".rate", p.AvgRateQPS)
		f("ph."+p.Phase+".w", p.AvgFleetPowerW)
		f("ph."+p.Phase+".p99", p.WorstP99US)
		f("ph."+p.Phase+".parked", p.AvgParkedNodes)
	}
	return strings.TrimSpace(b.String())
}

func TestGoldenScenarioStability(t *testing.T) {
	printMode := os.Getenv("GOLDEN_PRINT") != ""
	for _, tc := range goldenScenarioCases {
		res, err := RunScenario(tc.run)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := scenarioFingerprint(res)
		if printMode {
			fmt.Printf("\t%q: %q,\n", tc.name, got)
			continue
		}
		want, ok := goldenScenarioWant[tc.name]
		if !ok {
			t.Fatalf("%s: no golden recorded", tc.name)
		}
		if got != want {
			t.Errorf("%s: scenario output drifted from golden\n got: %s\nwant: %s",
				tc.name, diffFields(got, want), diffFields(want, got))
		}
	}
}

// TestGoldenScenarioClassCollapse pins the tentpole exactness claim:
// class-collapsed execution with K=1 replicas (and compact O(classes)
// aggregation) over the homogeneous warm golden fleets reproduces the
// pinned warm-path fingerprints bit-for-bit. Homogeneous fleets seed
// node i with Seed+i, so every timeline class is a singleton — the
// collapse machinery, replica scheduling and weighted collector must
// all be exact identities here, and the replicas may only add CI
// fields, never perturb a point estimate.
func TestGoldenScenarioClassCollapse(t *testing.T) {
	for _, tc := range goldenScenarioCases {
		if tc.run.ColdEpochs {
			continue // replicas are a warm-path feature
		}
		run := tc.run
		run.Replicas = 1
		run.CompactNodes = true
		res, err := RunScenario(run)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got, want := scenarioFingerprint(res), goldenScenarioWant[tc.name]; got != want {
			t.Errorf("%s: K=1 class collapse drifted from the pinned warm golden\n got: %s\nwant: %s",
				tc.name, diffFields(got, want), diffFields(want, got))
		}
		if res.Classes != run.Nodes {
			t.Errorf("%s: classes = %d, want %d singletons", tc.name, res.Classes, run.Nodes)
		}
		if res.CI == nil {
			t.Errorf("%s: replicas requested but no CI attached", tc.name)
		} else if res.CI.Samples != 2 {
			t.Errorf("%s: CI samples = %d, want 2", tc.name, res.CI.Samples)
		}
	}
}

// TestGoldenScenarioOracleController pins the closed-loop engine's
// exactness at the public API: the oracle controller — which routes the
// run through the incremental feedback machinery (live classes,
// per-epoch telemetry, split detection) but replays the precomputed
// plan — must reproduce the pinned warm-path fingerprints bit-for-bit,
// both expanded and in the K=1 compact class-collapse mode. Any drift
// here means the incremental engine is not an identity on open-loop
// decisions, which would poison every controller comparison built on
// it.
func TestGoldenScenarioOracleController(t *testing.T) {
	for _, tc := range goldenScenarioCases {
		if tc.run.ColdEpochs {
			continue // controllers are a warm-path feature
		}
		run := tc.run
		run.Elasticity.Controller = ControllerSpec{Name: ControllerOracle}
		res, err := RunScenario(run)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got, want := scenarioFingerprint(res), goldenScenarioWant[tc.name]; got != want {
			t.Errorf("%s: oracle-controlled run drifted from the pinned warm golden\n got: %s\nwant: %s",
				tc.name, diffFields(got, want), diffFields(want, got))
		}
		if res.Controller != ControllerOracle {
			t.Errorf("%s: result controller = %q, want %q", tc.name, res.Controller, ControllerOracle)
		}

		collapsed := run
		collapsed.Execution.Replicas = 1
		collapsed.Execution.CompactNodes = true
		cres, err := RunScenario(collapsed)
		if err != nil {
			t.Fatalf("%s (collapsed): %v", tc.name, err)
		}
		if got, want := scenarioFingerprint(cres), goldenScenarioWant[tc.name]; got != want {
			t.Errorf("%s: oracle K=1 class collapse drifted from the pinned warm golden\n got: %s\nwant: %s",
				tc.name, diffFields(got, want), diffFields(want, got))
		}
		if cres.Classes != collapsed.Nodes {
			t.Errorf("%s: classes = %d, want %d singletons", tc.name, cres.Classes, collapsed.Nodes)
		}
		if cres.CI == nil || cres.CI.Samples != 2 {
			t.Errorf("%s: oracle K=1 run CI = %+v, want 2 samples", tc.name, cres.CI)
		}
	}
}

// TestGoldenLiveForkRestoreStability anchors the live engine's
// correctness claim to the pinned hex-float goldens: a LiveScenario
// stepped halfway, forked, AND checkpointed through Snapshot/Restore
// must — on fork, restored copy, and original alike — finish with
// exactly the warm-path fingerprint captured when the warm engine
// landed. Any divergence means fork or restore is not a bit-exact
// replay of the parent.
func TestGoldenLiveForkRestoreStability(t *testing.T) {
	for _, tc := range goldenScenarioCases {
		if tc.run.ColdEpochs {
			continue // stepping needs the warm path
		}
		want, ok := goldenScenarioWant[tc.name]
		if !ok {
			t.Fatalf("%s: no golden recorded", tc.name)
		}
		live, err := NewLiveScenario(tc.run)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for live.Epoch() < live.Epochs()/2 {
			if _, err := live.Step(); err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
		}
		fork := live.Fork()
		blob, err := live.Snapshot()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", tc.name, err)
		}
		restored, err := RestoreLiveScenario(tc.run, blob)
		if err != nil {
			t.Fatalf("%s: restore: %v", tc.name, err)
		}
		for label, l := range map[string]*LiveScenario{"fork": fork, "restored": restored, "original": live} {
			for !l.Done() {
				if _, err := l.Step(); err != nil {
					t.Fatalf("%s (%s): %v", tc.name, label, err)
				}
			}
			res, err := l.Result()
			if err != nil {
				t.Fatalf("%s (%s): %v", tc.name, label, err)
			}
			if got := scenarioFingerprint(res); got != want {
				t.Errorf("%s: %s replay drifted from the pinned warm golden\n got: %s\nwant: %s",
					tc.name, label, diffFields(got, want), diffFields(want, got))
			}
		}
	}
}

// TestScenarioShimFieldsMapIntoGroups pins the deprecation contract of
// the ScenarioRun redesign: the old flat fields are shims onto the
// Execution/Elasticity groups — a run configured through the shims is
// bit-identical to the same run configured through the groups, and a
// set group field wins over its shim.
func TestScenarioShimFieldsMapIntoGroups(t *testing.T) {
	for _, tc := range goldenScenarioCases {
		if tc.run.ColdEpochs {
			continue
		}
		viaShims := tc.run
		viaShims.Replicas = 1
		viaShims.CompactNodes = true
		viaGroups := tc.run
		viaGroups.Execution = ScenarioExecution{Replicas: 1, CompactNodes: true}
		a, err := RunScenario(viaShims)
		if err != nil {
			t.Fatalf("%s (shims): %v", tc.name, err)
		}
		b, err := RunScenario(viaGroups)
		if err != nil {
			t.Fatalf("%s (groups): %v", tc.name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: shim-configured run diverged from group-configured run", tc.name)
		}
	}
	// Group-wins: a nonzero group field overrides its deprecated shim.
	ex, el := (ScenarioRun{
		Execution:       ScenarioExecution{Replicas: 3},
		Elasticity:      ScenarioElasticity{UnparkPowerW: 12},
		Replicas:        1,
		UnparkPowerW:    99,
		ColdEpochs:      true, // bools OR through
		UnparkLatencyNS: 7,    // unset in the group: shim applies
	}).normalized()
	if ex.Replicas != 3 || el.UnparkPowerW != 12 || !ex.ColdEpochs || el.UnparkLatencyNS != 7 {
		t.Errorf("shim merge = %+v / %+v, want group-wins with OR-ed bools", ex, el)
	}
}

// TestConstantScenarioReproducesStationaryService pins the degenerate
// case at the public-API level: a one-phase constant schedule fed to
// RunService must reproduce the stationary run bit-for-bit (identical
// fingerprint over every observable).
func TestConstantScenarioReproducesStationaryService(t *testing.T) {
	run := ServiceRun{
		Platform: Baseline, RateQPS: 200e3,
		DurationNS: 50_000_000, WarmupNS: 10_000_000, Seed: 1,
	}
	want, err := RunService(run)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NamedSchedule(ScenarioConstant, 200e3, run.DurationNS+run.WarmupNS)
	if err != nil {
		t.Fatal(err)
	}
	scheduled := run
	scheduled.RateQPS = 0
	scheduled.Schedule = sched
	got, err := RunService(scheduled)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Errorf("constant schedule diverged from stationary RunService:\n got: %s\nwant: %s",
			diffFields(fingerprint(got), fingerprint(want)),
			diffFields(fingerprint(want), fingerprint(got)))
	}
	// This stationary run is itself golden-pinned, so the scheduled run
	// transitively matches the pre-optimization goldens.
	if want2, ok := goldenWant["baseline-memcached-200k"]; ok && fingerprint(got) != want2 {
		t.Error("scheduled constant run drifted from the pinned stationary golden")
	}
}

// TestConstantScenarioReproducesStaticCluster pins the cluster-level
// degenerate case: one epoch spanning a constant schedule reproduces
// RunCluster exactly, per node and in aggregate.
func TestConstantScenarioReproducesStaticCluster(t *testing.T) {
	base := ClusterRun{
		ServiceRun: ServiceRun{
			Platform: Baseline, RateQPS: 450e3,
			DurationNS: 50_000_000, WarmupNS: 10_000_000, Seed: 3,
		},
		Nodes:           3,
		ClusterDispatch: ClusterConsolidate,
		ParkDrained:     true,
	}
	want, err := RunCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NamedSchedule(ScenarioConstant, 450e3, base.DurationNS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunScenario(ScenarioRun{
		ClusterRun: base,
		Schedule:   sched,
		ColdEpochs: true, // the cold path reconfigures parked nodes; DeepEqual needs it
		// EpochNS zero: one epoch spanning the whole schedule.
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Epochs) != 1 {
		t.Fatalf("epochs = %d, want 1", len(got.Epochs))
	}
	if !reflect.DeepEqual(got.Epochs[0].Fleet, want) {
		t.Errorf("one-epoch constant scenario diverged from RunCluster:\n got %+v\nwant %+v",
			got.Epochs[0].Fleet, want)
	}
}

// TestWarmConstantScenarioReproducesStaticCluster pins the warm engine's
// degenerate case at the public-API level: one epoch over a constant
// schedule, spread so every node carries load, reproduces RunCluster
// bit-for-bit — the resumable instance's first interval is the one-shot
// simulation.
func TestWarmConstantScenarioReproducesStaticCluster(t *testing.T) {
	base := ClusterRun{
		ServiceRun: ServiceRun{
			Platform: Baseline, RateQPS: 450e3,
			DurationNS: 50_000_000, WarmupNS: 10_000_000, Seed: 3,
		},
		Nodes:           3,
		ClusterDispatch: ClusterSpread,
	}
	want, err := RunCluster(base)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NamedSchedule(ScenarioConstant, 450e3, base.DurationNS)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunScenario(ScenarioRun{ClusterRun: base, Schedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Epochs) != 1 {
		t.Fatalf("epochs = %d, want 1", len(got.Epochs))
	}
	if !reflect.DeepEqual(got.Epochs[0].Fleet, want) {
		t.Errorf("warm one-epoch constant scenario diverged from RunCluster:\n got %+v\nwant %+v",
			got.Epochs[0].Fleet, want)
	}
}
