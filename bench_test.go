package agilewatts

// The benchmark harness regenerates every table and figure of the paper.
// Each benchmark runs the corresponding experiment end to end and, on the
// first iteration, prints the reproduced rows/series so that
//
//	go test -bench=. -benchmem
//
// emits the full evaluation alongside the timing. Quick fidelity is used
// so the full suite completes in minutes; run cmd/awsim for
// full-fidelity output.

import (
	"io"
	"os"
	"sync"
	"testing"

	"repro/internal/xrand"
)

var printOnce sync.Map

// benchSeedBlock hands each benchmark invocation a disjoint seed range
// (see xrand.SeedBlocks for the block-size invariant).
var benchSeedBlock xrand.SeedBlocks

// benchExperiment runs one experiment per iteration, printing the report
// on the first run of each benchmark. Seeds are unique per iteration AND
// per benchmark, so the process-wide runner cache never short-circuits
// the measurement — not within a benchmark, and not across benchmarks
// whose sweeps overlap (Fig. 8/10, Table 5, the proportionality and
// cluster studies share the Baseline Memcached curve).
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	opts := QuickOptions()
	base := benchSeedBlock.Next(opts.Seed)
	for i := 0; i < b.N; i++ {
		// Stride iterations within the block: fleet experiments derive
		// per-node seeds Seed..Seed+Nodes-1, which adjacent iteration
		// seeds would otherwise share (and memoize away). A stride of 16
		// covers the cluster experiment's fleets while keeping the block
		// good for 2^16 iterations — far beyond any realistic b.N.
		opts.Seed = base + uint64(i)<<4
		var w io.Writer = io.Discard
		if _, done := printOnce.LoadOrStore(name, true); !done {
			w = os.Stdout
		}
		if err := RunExperiment(name, opts, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the C-state hierarchy (paper Table 1).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, ExpTable1) }

// BenchmarkTable2 regenerates the component-state matrix (paper Table 2).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, ExpTable2) }

// BenchmarkTable3 regenerates the PPA breakdown (paper Table 3).
func BenchmarkTable3(b *testing.B) { benchExperiment(b, ExpTable3) }

// BenchmarkTable4 regenerates the power-gating comparison (paper Table 4).
func BenchmarkTable4(b *testing.B) { benchExperiment(b, ExpTable4) }

// BenchmarkTable5 regenerates the datacenter cost savings (paper Table 5).
func BenchmarkTable5(b *testing.B) { benchExperiment(b, ExpTable5) }

// BenchmarkMotivation regenerates the Sec. 2 upper-bound analysis.
func BenchmarkMotivation(b *testing.B) { benchExperiment(b, ExpMotivation) }

// BenchmarkLatency regenerates the Sec. 5.2 transition-latency analysis.
func BenchmarkLatency(b *testing.B) { benchExperiment(b, ExpLatency) }

// BenchmarkFigure8 regenerates the Memcached baseline-vs-AW sweep
// (paper Fig. 8 a-d).
func BenchmarkFigure8(b *testing.B) { benchExperiment(b, ExpFigure8) }

// BenchmarkFigure9 regenerates the tuned-configuration study (paper Fig. 9).
func BenchmarkFigure9(b *testing.B) { benchExperiment(b, ExpFigure9) }

// BenchmarkFigure10 regenerates AW vs tuned configurations (paper Fig. 10).
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, ExpFigure10) }

// BenchmarkFigure11 regenerates the Turbo interplay study (paper Fig. 11).
func BenchmarkFigure11(b *testing.B) { benchExperiment(b, ExpFigure11) }

// BenchmarkFigure12 regenerates the MySQL evaluation (paper Fig. 12).
func BenchmarkFigure12(b *testing.B) { benchExperiment(b, ExpFigure12) }

// BenchmarkFigure13 regenerates the Kafka evaluation (paper Fig. 13).
func BenchmarkFigure13(b *testing.B) { benchExperiment(b, ExpFigure13) }

// BenchmarkValidation regenerates the Sec. 6.3 model validation.
func BenchmarkValidation(b *testing.B) { benchExperiment(b, ExpValidation) }

// BenchmarkSnoop regenerates the Sec. 7.5 snoop-impact analysis.
func BenchmarkSnoop(b *testing.B) { benchExperiment(b, ExpSnoop) }

// BenchmarkAMD regenerates the Sec. 5.5 EPYC analysis.
func BenchmarkAMD(b *testing.B) { benchExperiment(b, ExpAMD) }

// BenchmarkRaceToHalt regenerates the Sec. 8 race-to-halt analysis.
func BenchmarkRaceToHalt(b *testing.B) { benchExperiment(b, ExpRaceToHalt) }

// BenchmarkPkgIdle regenerates the package idle-state extension.
func BenchmarkPkgIdle(b *testing.B) { benchExperiment(b, ExpPkgIdle) }

// BenchmarkBreakdown regenerates the latency decomposition.
func BenchmarkBreakdown(b *testing.B) { benchExperiment(b, ExpBreakdown) }

// BenchmarkAblateGovernor regenerates the governor-policy ablation.
func BenchmarkAblateGovernor(b *testing.B) { benchExperiment(b, ExpAblateGovernor) }

// BenchmarkAblateZones regenerates the UFPG zone-count ablation.
func BenchmarkAblateZones(b *testing.B) { benchExperiment(b, ExpAblateZones) }

// BenchmarkAblatePower regenerates the C6A power-budget sensitivity.
func BenchmarkAblatePower(b *testing.B) { benchExperiment(b, ExpAblatePower) }

// BenchmarkAblateNoise regenerates the OS-noise sensitivity study.
func BenchmarkAblateNoise(b *testing.B) { benchExperiment(b, ExpAblateNoise) }

// BenchmarkDispatch regenerates the dispatch-policy trade-off study.
func BenchmarkDispatch(b *testing.B) { benchExperiment(b, ExpDispatch) }

// BenchmarkCluster regenerates the fleet spread-vs-consolidate study.
func BenchmarkCluster(b *testing.B) { benchExperiment(b, ExpCluster) }

// BenchmarkSimulatorThroughput measures raw discrete-event simulator
// speed: one 100ms Memcached window at 200 KQPS per iteration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := RunService(ServiceRun{
			Platform: Baseline, RateQPS: 200_000,
			DurationNS: 100_000_000, WarmupNS: 10_000_000,
			Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
