package agilewatts

import (
	"fmt"

	"repro/internal/scenariofile"
	"repro/internal/sim"
)

// ScenarioFile is the decoded form of a declarative scenario file: a
// JSON document describing one time-varying fleet simulation end to end
// (schedule, fleet, engine, elasticity, faults). See LoadScenarioFile.
type ScenarioFile = scenariofile.File

// LoadScenarioFile reads a declarative scenario file and maps it onto a
// ScenarioRun. Decoding is strict (unknown fields are errors); all
// semantic validation happens when the run executes, through the same
// Normalize pass RunScenario and ValidateScenario share, so a bad file
// fails with exactly the error a bad programmatic config would.
func LoadScenarioFile(path string) (ScenarioRun, error) {
	f, err := scenariofile.Load(path)
	if err != nil {
		return ScenarioRun{}, err
	}
	return ScenarioRunFromFile(f)
}

// ParseScenarioFile decodes a scenario document from memory and maps it
// onto a ScenarioRun (the in-memory form of LoadScenarioFile).
func ParseScenarioFile(data []byte) (ScenarioRun, error) {
	f, err := scenariofile.Parse(data)
	if err != nil {
		return ScenarioRun{}, err
	}
	return ScenarioRunFromFile(f)
}

// ms converts schedule-clock milliseconds to a Duration.
func ms(v float64) Duration { return sim.Time(v * 1e6) }

// ScenarioRunFromFile maps a decoded scenario file onto the
// programmatic run description. Name lookups that the file format
// delegates to the API (platform configuration, service profile,
// explicit phase assembly) resolve here; everything else maps
// field-for-field and validates inside RunScenario.
func ScenarioRunFromFile(f ScenarioFile) (ScenarioRun, error) {
	r := ScenarioRun{
		ClusterRun: ClusterRun{
			ServiceRun: ServiceRun{
				RateQPS:  f.Schedule.BaseQPS,
				WarmupNS: ms(f.Fleet.WarmupMS),
				Seed:     f.Fleet.Seed,
			},
			Nodes:           f.Fleet.Nodes,
			ClusterDispatch: f.Fleet.Dispatch,
			TargetUtil:      f.Fleet.TargetUtil,
			ParkDrained:     f.Fleet.ParkDrained,
			SharedSeeds:     f.Fleet.SharedSeeds,
		},
		Scenario: f.Schedule.Shape,
		TotalNS:  ms(f.Schedule.TotalMS),
		EpochNS:  ms(f.EpochMS),
		Execution: ScenarioExecution{
			ColdEpochs:   f.Execution.ColdEpochs,
			Replicas:     f.Execution.Replicas,
			CompactNodes: f.Execution.CompactNodes,
		},
		Elasticity: ScenarioElasticity{
			UnparkLatencyNS: ms(f.Elasticity.UnparkLatencyMS),
			UnparkPowerW:    f.Elasticity.UnparkPowerW,
			UnparkFree:      f.Elasticity.UnparkFree,
			Controller: ControllerSpec{
				Name:       f.Elasticity.Controller.Name,
				UpUtil:     f.Elasticity.Controller.UpUtil,
				DownUtil:   f.Elasticity.Controller.DownUtil,
				TargetUtil: f.Elasticity.Controller.TargetUtil,
				Cooldown:   f.Elasticity.Controller.Cooldown,
				Alpha:      f.Elasticity.Controller.Alpha,
			},
		},
		Faults: FaultSpec{
			RestartLatency: ms(f.Faults.RestartLatencyMS),
			RestartPowerW:  f.Faults.RestartPowerW,
			RestartFree:    f.Faults.RestartFree,
		},
		Overload: OverloadSpec{
			Policy:        f.Overload.Policy,
			MaxUtil:       f.Overload.MaxUtil,
			MaxBacklogSec: f.Overload.MaxBacklogSec,
		},
	}
	if f.Fleet.Platform != "" {
		cfg, err := ConfigByName(f.Fleet.Platform)
		if err != nil {
			return ScenarioRun{}, fmt.Errorf("scenariofile: %w", err)
		}
		r.Platform = cfg
	}
	if f.Fleet.Service != "" {
		prof, err := ServiceByName(f.Fleet.Service)
		if err != nil {
			return ScenarioRun{}, fmt.Errorf("scenariofile: %w", err)
		}
		r.Service = prof
	}
	if len(f.Schedule.Phases) > 0 {
		phases := make([]Phase, len(f.Schedule.Phases))
		for i, p := range f.Schedule.Phases {
			phases[i] = Phase{
				Name:      p.Name,
				Duration:  ms(p.DurationMS),
				StartRate: p.StartQPS,
				EndRate:   p.EndQPS,
			}
		}
		name := f.Name
		if name == "" {
			name = "file"
		}
		sched, err := NewSchedule(name, phases...)
		if err != nil {
			return ScenarioRun{}, err
		}
		r.Schedule = sched
	}
	for _, nf := range f.Faults.Nodes {
		r.Faults.Nodes = append(r.Faults.Nodes, NodeFault{
			Node:   nf.Node,
			Kind:   nf.Kind,
			Start:  ms(nf.StartMS),
			End:    ms(nf.EndMS),
			Factor: nf.Factor,
		})
	}
	if c := f.Faults.Correlated; c != (scenariofile.CorrelatedSpec{}) {
		r.Faults.Correlated = CorrelatedFaults{
			Kind:        c.Kind,
			GroupSize:   c.GroupSize,
			Probability: c.Probability,
			Duration:    ms(c.DurationMS),
			Factor:      c.Factor,
			Seed:        c.Seed,
		}
	}
	return r, nil
}
