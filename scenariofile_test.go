package agilewatts

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// TestLoadScenarioFileMapping pins the file→run field mapping on the
// checked-in crash-under-spike scenario: names resolve to the same
// configurations the programmatic API hands out, and every _ms duration
// lands on the nanosecond clock.
func TestLoadScenarioFileMapping(t *testing.T) {
	r, err := LoadScenarioFile(filepath.Join("testdata", "scenarios", "crash-under-spike.json"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Scenario != "spike" || r.RateQPS != 400e3 || r.TotalNS != 60_000_000 {
		t.Errorf("schedule mapped wrong: shape=%q rate=%g total=%v", r.Scenario, r.RateQPS, r.TotalNS)
	}
	if r.Nodes != 4 || r.ClusterDispatch != "consolidate" || !r.ParkDrained {
		t.Errorf("fleet mapped wrong: nodes=%d dispatch=%q park=%v", r.Nodes, r.ClusterDispatch, r.ParkDrained)
	}
	if r.WarmupNS != 5_000_000 || r.Seed != 5 || r.EpochNS != 10_000_000 {
		t.Errorf("warmup/seed/epoch mapped wrong: %v/%d/%v", r.WarmupNS, r.Seed, r.EpochNS)
	}
	aw, err := ConfigByName("AW")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Platform, aw) {
		t.Error("platform name did not resolve to the AW configuration")
	}
	if r.Elasticity.Controller.Name != ControllerReactive {
		t.Errorf("controller = %q, want %q", r.Elasticity.Controller.Name, ControllerReactive)
	}
	wantFaults := []NodeFault{
		{Node: 0, Kind: FaultCrash, Start: 20_000_000, End: 40_000_000},
		{Node: 1, Kind: FaultCrash, Start: 25_000_000, End: 35_000_000},
	}
	if !reflect.DeepEqual(r.Faults.Nodes, wantFaults) {
		t.Errorf("fault windows mapped wrong: %+v", r.Faults.Nodes)
	}
	if r.Faults.RestartLatency != 8_000_000 || r.Faults.RestartPowerW != 40 {
		t.Errorf("restart penalty mapped wrong: %v/%gW", r.Faults.RestartLatency, r.Faults.RestartPowerW)
	}
}

// TestScenarioFileErrorParity is the single-validation-path guarantee
// at the file level: a semantically invalid document decodes fine, and
// then ValidateScenario and RunScenario reject the mapped run with
// byte-identical errors — the same text the CLIs print.
func TestScenarioFileErrorParity(t *testing.T) {
	const header = `"schedule": {"shape": "constant", "base_qps": 100000, "total_ms": 50}, "fleet": {"nodes": 2}`
	cases := []struct {
		name, doc, want string
	}{
		{
			"overlapping fault windows",
			`{` + header + `, "faults": {"nodes": [
				{"node": 0, "kind": "crash", "start_ms": 0, "end_ms": 10},
				{"node": 0, "kind": "crash", "start_ms": 5, "end_ms": 15}]}}`,
			"overlap on node 0",
		},
		{
			"unknown fault kind",
			`{` + header + `, "faults": {"nodes": [{"node": 0, "kind": "gremlin", "start_ms": 0, "end_ms": 10}]}}`,
			"unknown kind",
		},
		{
			"unknown controller",
			`{` + header + `, "elasticity": {"controller": {"name": "psychic"}}}`,
			"unknown controller",
		},
		{
			"negative restart latency",
			`{` + header + `, "faults": {"restart_latency_ms": -1, "nodes": [{"node": 0, "kind": "crash", "start_ms": 0, "end_ms": 10}]}}`,
			"negative restart penalty",
		},
		{
			"fault on the cold engine",
			`{` + header + `, "execution": {"cold_epochs": true}, "faults": {"nodes": [{"node": 0, "kind": "crash", "start_ms": 0, "end_ms": 10}]}}`,
			"fault injection needs the warm path",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run, err := ParseScenarioFile([]byte(tc.doc))
			if err != nil {
				t.Fatalf("decode rejected a syntactically valid document: %v", err)
			}
			verr := ValidateScenario(run)
			if verr == nil {
				t.Fatal("ValidateScenario accepted the invalid run")
			}
			if !strings.Contains(verr.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", verr, tc.want)
			}
			if _, rerr := RunScenario(run); rerr == nil || rerr.Error() != verr.Error() {
				t.Errorf("RunScenario error %v != ValidateScenario error %v", rerr, verr)
			}
		})
	}
}

// TestValidateScenarioNaNFactorParity covers the hostile value JSON
// cannot carry: a NaN straggler factor injected programmatically is
// rejected identically by both entry points.
func TestValidateScenarioNaNFactorParity(t *testing.T) {
	run := ScenarioRun{
		Scenario: "constant",
		TotalNS:  50_000_000,
		ClusterRun: ClusterRun{
			ServiceRun: ServiceRun{RateQPS: 100e3},
			Nodes:      2,
		},
		Faults: FaultSpec{Nodes: []NodeFault{
			{Node: 0, Kind: FaultStraggler, Start: 0, End: 10_000_000, Factor: math.NaN()},
		}},
	}
	verr := ValidateScenario(run)
	if verr == nil || !strings.Contains(verr.Error(), "must be a finite value > 1") {
		t.Fatalf("ValidateScenario = %v, want the straggler-factor error", verr)
	}
	if _, rerr := RunScenario(run); rerr == nil || rerr.Error() != verr.Error() {
		t.Errorf("RunScenario error %v != ValidateScenario error %v", rerr, verr)
	}
}
