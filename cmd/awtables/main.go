// Command awtables prints the paper's static/model-derived tables
// (Tables 1-4, the Sec. 2 motivation analysis, the Sec. 5.2 transition
// latencies, and the Sec. 7.5 snoop analysis) without running any
// simulation.
package main

import (
	"fmt"
	"os"

	agilewatts "repro"
)

func main() {
	names := []string{
		agilewatts.ExpTable1, agilewatts.ExpTable2, agilewatts.ExpTable3,
		agilewatts.ExpTable4, agilewatts.ExpMotivation, agilewatts.ExpLatency,
		agilewatts.ExpSnoop,
	}
	if len(os.Args) > 1 {
		names = os.Args[1:]
	}
	for _, n := range names {
		if err := agilewatts.RunExperiment(n, agilewatts.DefaultOptions(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "awtables:", err)
			os.Exit(1)
		}
	}
}
