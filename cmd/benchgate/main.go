// Command benchgate compares two `go test -bench` output files and fails
// when any benchmark regressed beyond a threshold. CI uses it as the
// enforcement half of the benchmark comparison (benchstat renders the
// human-readable report; benchgate decides pass/fail), guarding the
// internal/sim and internal/stats microbenchmarks against silent
// slowdowns.
//
// Usage:
//
//	benchgate -base old.txt -new new.txt [-threshold 20] [-filter REGEX]
//
// Each file may contain multiple runs of the same benchmark (-count=N);
// the median ns/op per benchmark is compared, which tolerates scheduler
// noise far better than single samples. Benchmarks present in only one
// file are reported and skipped. Exit status is 1 when any shared
// benchmark's median slowed down by more than threshold percent.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches "BenchmarkName-8   1234   567.8 ns/op ..." output.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// parse returns benchmark name -> ns/op samples.
func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] = append(out[m[1]], v)
	}
	return out, sc.Err()
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	base := flag.String("base", "", "baseline bench output file")
	next := flag.String("new", "", "new bench output file")
	threshold := flag.Float64("threshold", 20, "max allowed regression (percent)")
	filter := flag.String("filter", "", "only gate benchmarks matching this regex")
	flag.Parse()
	if *base == "" || *next == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -new are required")
		os.Exit(2)
	}
	var keep *regexp.Regexp
	if *filter != "" {
		var err error
		if keep, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: bad -filter:", err)
			os.Exit(2)
		}
	}
	baseRuns, err := parse(*base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	newRuns, err := parse(*next)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(newRuns))
	for name := range newRuns {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	compared := 0
	for _, name := range names {
		if keep != nil && !keep.MatchString(name) {
			continue
		}
		bv, ok := baseRuns[name]
		if !ok {
			fmt.Printf("new       %-40s %12.1f ns/op (no baseline, skipped)\n", name, median(newRuns[name]))
			continue
		}
		compared++
		b, n := median(bv), median(newRuns[name])
		deltaPct := 0.0
		if b > 0 {
			deltaPct = (n - b) / b * 100
		}
		verdict := "ok"
		if deltaPct > *threshold {
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", *threshold)
			failed = true
		}
		fmt.Printf("%-9s %-40s %12.1f -> %12.1f ns/op  %+7.1f%%\n", verdict, name, b, n, deltaPct)
	}
	for name := range baseRuns {
		if _, ok := newRuns[name]; !ok && (keep == nil || keep.MatchString(name)) {
			fmt.Printf("gone      %-40s (present in baseline only)\n", name)
		}
	}
	if compared == 0 {
		fmt.Println("benchgate: no shared benchmarks to compare")
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: benchmark regression beyond %.0f%%\n", *threshold)
		os.Exit(1)
	}
}
