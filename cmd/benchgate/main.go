// Command benchgate compares two `go test -bench` output files and fails
// when any benchmark regressed beyond a threshold. CI uses it as the
// enforcement half of the benchmark comparison (benchstat renders the
// human-readable report; benchgate decides pass/fail), guarding the
// internal/sim, internal/stats, internal/server and internal/cluster
// microbenchmarks against silent slowdowns.
//
// Usage:
//
//	benchgate -new new.txt [-base old.txt] [-threshold 20] [-filter REGEX]
//	          [-emit BENCH_2026-01-02.json]
//
// Each file may contain multiple runs of the same benchmark (-count=N);
// the median ns/op per benchmark is compared, which tolerates scheduler
// noise far better than single samples. Benchmarks present in only one
// file are reported and skipped. Exit status is 1 when any shared
// benchmark's median slowed down by more than threshold percent.
//
// -emit writes a machine-readable JSON snapshot of the -new medians
// (ns/op, allocs/op when the run used -benchmem, sample counts, and —
// when -base is given — the baseline median and speedup factor). The CI
// bench job emits one per run as the repo's recorded perf trajectory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// benchLine matches "BenchmarkName-8  1234  567.8 ns/op [ 99 B/op  3 allocs/op ]".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op(?:\s+([0-9.]+) B/op\s+(\d+) allocs/op)?`)

// sample is one benchmark line's measurements.
type sample struct {
	nsOp   float64
	bOp    float64
	allocs float64
	hasMem bool
}

// parse returns benchmark name -> samples.
func parse(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := sample{nsOp: v}
		if m[3] != "" {
			s.bOp, _ = strconv.ParseFloat(m[3], 64)
			s.allocs, _ = strconv.ParseFloat(m[4], 64)
			s.hasMem = true
		}
		out[m[1]] = append(out[m[1]], s)
	}
	return out, sc.Err()
}

func medianOf(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func median(ss []sample) float64 {
	v := make([]float64, len(ss))
	for i, s := range ss {
		v[i] = s.nsOp
	}
	return medianOf(v)
}

// emitEntry is one benchmark's snapshot in the emitted JSON.
type emitEntry struct {
	NsOp     float64  `json:"ns_op"`
	Samples  int      `json:"samples"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
	BytesOp  *float64 `json:"bytes_op,omitempty"`
	BaseNsOp *float64 `json:"base_ns_op,omitempty"`
	Speedup  *float64 `json:"speedup,omitempty"`
}

// emit writes the JSON perf snapshot.
func emit(path string, newRuns, baseRuns map[string][]sample) error {
	type doc struct {
		Date       string               `json:"date"`
		Benchmarks map[string]emitEntry `json:"benchmarks"`
	}
	d := doc{Date: time.Now().UTC().Format("2006-01-02"), Benchmarks: map[string]emitEntry{}}
	for name, ss := range newRuns {
		e := emitEntry{NsOp: median(ss), Samples: len(ss)}
		var allocs, bytes []float64
		for _, s := range ss {
			if s.hasMem {
				allocs = append(allocs, s.allocs)
				bytes = append(bytes, s.bOp)
			}
		}
		if len(allocs) > 0 {
			a, by := medianOf(allocs), medianOf(bytes)
			e.AllocsOp, e.BytesOp = &a, &by
		}
		// Benchmarks without a usable baseline (first run of a new
		// benchmark, or a garbage base median) get a partial record —
		// ns_op and samples only — rather than zero-valued base_ns_op
		// and speedup fields that would read as a measured 0x.
		if bv, ok := baseRuns[name]; ok && len(bv) > 0 {
			if b := median(bv); b > 0 && e.NsOp > 0 {
				sp := b / e.NsOp
				e.BaseNsOp, e.Speedup = &b, &sp
			}
		}
		d.Benchmarks[name] = e
	}
	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func main() {
	base := flag.String("base", "", "baseline bench output file (optional with -emit)")
	next := flag.String("new", "", "new bench output file")
	threshold := flag.Float64("threshold", 20, "max allowed regression (percent)")
	filter := flag.String("filter", "", "only gate benchmarks matching this regex")
	emitPath := flag.String("emit", "", "write a JSON perf snapshot of -new (BENCH_<date>.json)")
	flag.Parse()
	if *next == "" || (*base == "" && *emitPath == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -new and at least one of -base/-emit are required")
		os.Exit(2)
	}
	var keep *regexp.Regexp
	if *filter != "" {
		var err error
		if keep, err = regexp.Compile(*filter); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: bad -filter:", err)
			os.Exit(2)
		}
	}
	newRuns, err := parse(*next)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	baseRuns := map[string][]sample{}
	if *base != "" {
		if baseRuns, err = parse(*base); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
	}
	if *emitPath != "" {
		if err := emit(*emitPath, newRuns, baseRuns); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: emit:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *emitPath, len(newRuns))
	}
	if *base == "" {
		return
	}

	names := make([]string, 0, len(newRuns))
	for name := range newRuns {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	compared := 0
	for _, name := range names {
		if keep != nil && !keep.MatchString(name) {
			continue
		}
		bv, ok := baseRuns[name]
		if !ok {
			fmt.Printf("new       %-40s %12.1f ns/op (no baseline, skipped)\n", name, median(newRuns[name]))
			continue
		}
		compared++
		b, n := median(bv), median(newRuns[name])
		deltaPct := 0.0
		if b > 0 {
			deltaPct = (n - b) / b * 100
		}
		verdict := "ok"
		if deltaPct > *threshold {
			verdict = fmt.Sprintf("FAIL (> +%.0f%%)", *threshold)
			failed = true
		}
		fmt.Printf("%-9s %-40s %12.1f -> %12.1f ns/op  %+7.1f%%\n", verdict, name, b, n, deltaPct)
	}
	for name := range baseRuns {
		if _, ok := newRuns[name]; !ok && (keep == nil || keep.MatchString(name)) {
			fmt.Printf("gone      %-40s (present in baseline only)\n", name)
		}
	}
	if compared == 0 {
		fmt.Println("benchgate: no shared benchmarks to compare")
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: benchmark regression beyond %.0f%%\n", *threshold)
		os.Exit(1)
	}
}
