package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	path := writeBench(t, "new.txt", `
goos: linux
BenchmarkRunScenarioWarm-8   	      10	 123456789 ns/op	 1000000 B/op	   20000 allocs/op
BenchmarkRunScenarioWarm-8   	      10	 123456791 ns/op	 1000002 B/op	   20002 allocs/op
BenchmarkRunScenario100K-8   	       1	3318566903 ns/op
PASS
`)
	runs, err := parse(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(runs["BenchmarkRunScenarioWarm"]); got != 2 {
		t.Fatalf("warm samples = %d, want 2", got)
	}
	if got := runs["BenchmarkRunScenario100K"]; len(got) != 1 || got[0].nsOp != 3318566903 || got[0].hasMem {
		t.Fatalf("100K sample = %+v, want one memless 3318566903 ns/op sample", got)
	}
	if !runs["BenchmarkRunScenarioWarm"][0].hasMem {
		t.Fatal("benchmem columns not parsed")
	}
}

func TestMedianOf(t *testing.T) {
	if got := medianOf([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := medianOf([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
}

// TestEmitPartialWithoutBaseline pins the satellite fix: a benchmark
// absent from the baseline (or with a zero base median) emits a partial
// record — ns_op/samples only, no base_ns_op, no speedup — instead of
// zero-valued comparison fields.
func TestEmitPartialWithoutBaseline(t *testing.T) {
	newRuns := map[string][]sample{
		"BenchmarkShared": {{nsOp: 100}, {nsOp: 110}},
		"BenchmarkNew":    {{nsOp: 50, bOp: 640, allocs: 7, hasMem: true}},
		"BenchmarkZeroed": {{nsOp: 80}},
	}
	baseRuns := map[string][]sample{
		"BenchmarkShared": {{nsOp: 210}},
		"BenchmarkZeroed": {{nsOp: 0}},
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := emit(path, newRuns, baseRuns); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Date       string                     `json:"date"`
		Benchmarks map[string]json.RawMessage `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var shared emitEntry
	if err := json.Unmarshal(doc.Benchmarks["BenchmarkShared"], &shared); err != nil {
		t.Fatal(err)
	}
	if shared.BaseNsOp == nil || *shared.BaseNsOp != 210 {
		t.Fatalf("shared base = %v, want 210", shared.BaseNsOp)
	}
	if shared.Speedup == nil || *shared.Speedup != 2 {
		t.Fatalf("shared speedup = %v, want 2 (210/105 median)", shared.Speedup)
	}
	for _, name := range []string{"BenchmarkNew", "BenchmarkZeroed"} {
		var m map[string]any
		if err := json.Unmarshal(doc.Benchmarks[name], &m); err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"base_ns_op", "speedup"} {
			if _, present := m[field]; present {
				t.Errorf("%s: %q emitted without a usable baseline", name, field)
			}
		}
	}
	var withMem emitEntry
	if err := json.Unmarshal(doc.Benchmarks["BenchmarkNew"], &withMem); err != nil {
		t.Fatal(err)
	}
	if withMem.AllocsOp == nil || *withMem.AllocsOp != 7 || withMem.BytesOp == nil || *withMem.BytesOp != 640 {
		t.Fatalf("benchmem medians not emitted: %+v", withMem)
	}
}
