package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	agilewatts "repro"
)

const fixturePath = "../../testdata/scenarios/crash-under-spike.json"

// testDaemon builds a manual-clock daemon from the checked-in fixture
// and serves both API surfaces from httptest listeners.
func testDaemon(t *testing.T, scale float64) (*daemon, *httptest.Server, *httptest.Server) {
	t.Helper()
	name, run, err := selectScenario(fixturePath, "")
	if err != nil {
		t.Fatal(err)
	}
	d, err := newDaemon(name, run, scale, defaultDaemonOptions())
	if err != nil {
		t.Fatal(err)
	}
	query := httptest.NewServer(d.queryMux())
	admin := httptest.NewServer(d.adminMux())
	t.Cleanup(query.Close)
	t.Cleanup(admin.Close)
	return d, query, admin
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s: %s", url, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

func postJSON(t *testing.T, url string, req, v any) *http.Response {
	t.Helper()
	var body io.Reader
	if req != nil {
		data, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(data)
	}
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func TestSelectScenario(t *testing.T) {
	name, run, err := selectScenario(fixturePath, "")
	if err != nil {
		t.Fatal(err)
	}
	if name != "crash-under-spike" || run.Nodes != 4 {
		t.Errorf("selected %q with %d nodes, want crash-under-spike with 4", name, run.Nodes)
	}

	single, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	other := strings.Replace(string(single), `"crash-under-spike"`, `"variant"`, 1)
	multi := filepath.Join(t.TempDir(), "multi.json")
	if err := os.WriteFile(multi, append(single, other...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := selectScenario(multi, ""); err == nil || !strings.Contains(err.Error(), "pick one with -scenario") {
		t.Errorf("multi-document file without -scenario: err = %v", err)
	}
	if name, _, err = selectScenario(multi, "variant"); err != nil || name != "variant" {
		t.Errorf("selectScenario(variant) = %q, %v", name, err)
	}
	if _, _, err := selectScenario(multi, "absent"); err == nil || !strings.Contains(err.Error(), "crash-under-spike, variant") {
		t.Errorf("unknown name should list the available scenarios, got %v", err)
	}
}

// TestDaemonEndToEnd drives the full admin+query session the daemon is
// for: manual stepping, the telemetry stream, a what-if fork, a
// snapshot/restore round-trip mid-run, and a final result that is
// byte-identical to RunScenario on the same description — even though
// the serving fleet was replaced by its own checkpoint halfway through.
func TestDaemonEndToEnd(t *testing.T) {
	_, query, admin := testDaemon(t, 0)

	var st statusReply
	getJSON(t, query.URL+"/v1/status", &st)
	if st.Scenario != "crash-under-spike" || st.Epoch != 0 || st.Epochs != 6 || st.Done {
		t.Fatalf("initial status %+v", st)
	}

	if resp, err := http.Get(query.URL + "/v1/result"); err != nil || resp.StatusCode != http.StatusConflict {
		t.Fatalf("result before any epoch: %v %v", resp.Status, err)
	} else {
		resp.Body.Close()
	}

	var tels []agilewatts.FleetTelemetry
	postJSON(t, admin.URL+"/v1/step?epochs=2", nil, &tels)
	if len(tels) != 2 || tels[1].Epoch != 1 {
		t.Fatalf("step returned %+v", tels)
	}

	// What-if: park all but one node for two epochs, then run out the
	// schedule. The fork answers; the live fleet must not move.
	var wi whatIfReply
	postJSON(t, query.URL+"/v1/whatif", whatIfRequest{TargetNodes: 1, Epochs: 2, RunToEnd: true}, &wi)
	if wi.ForkedAt != 2 || wi.Forced != 2 || len(wi.Epochs) != 4 {
		t.Fatalf("what-if reply: forked_at=%d forced=%d epochs=%d", wi.ForkedAt, wi.Forced, len(wi.Epochs))
	}
	if wi.Epochs[0].ActiveNodes != 1 {
		t.Errorf("forced epoch ran %d active nodes, want 1", wi.Epochs[0].ActiveNodes)
	}
	if wi.Summary == nil || wi.Summary.FleetEnergyJ <= 0 {
		t.Errorf("what-if summary missing or empty: %+v", wi.Summary)
	}
	getJSON(t, query.URL+"/v1/status", &st)
	if st.Epoch != 2 {
		t.Fatalf("what-if moved the live fleet to epoch %d", st.Epoch)
	}

	// Telemetry backlog: two completed epochs, NDJSON.
	resp, err := http.Get(query.URL + "/v1/telemetry?from=0")
	if err != nil {
		t.Fatal(err)
	}
	var lines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var tel agilewatts.FleetTelemetry
		if err := json.Unmarshal(sc.Bytes(), &tel); err != nil {
			t.Fatalf("bad NDJSON line: %v", err)
		}
		if tel.Epoch != lines {
			t.Errorf("telemetry line %d reports epoch %d", lines, tel.Epoch)
		}
		lines++
	}
	resp.Body.Close()
	if lines != 2 {
		t.Fatalf("telemetry stream carried %d epochs, want 2", lines)
	}

	// Snapshot the fleet and feed the checkpoint straight back: the
	// restored fleet replaces the live one at the same position.
	resp, err = http.Get(admin.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: %s %v", resp.Status, err)
	}
	if got := resp.Header.Get("X-Scenario-Epoch"); got != "2" {
		t.Errorf("snapshot epoch header %q, want 2", got)
	}
	resp, err = http.Post(admin.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore rejected its own snapshot: %s", resp.Status)
	}
	getJSON(t, query.URL+"/v1/status", &st)
	if st.Epoch != 2 {
		t.Fatalf("restored fleet at epoch %d, want 2", st.Epoch)
	}

	// Corrupt checkpoints must not replace the fleet.
	bad := append([]byte{}, blob...)
	bad[0]++
	resp, err = http.Post(admin.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt restore: %s, want 422", resp.Status)
	}

	// Run out the schedule on the restored fleet and compare the final
	// result with the reference engine, byte for byte.
	postJSON(t, admin.URL+"/v1/step?epochs=10", nil, &tels)
	getJSON(t, query.URL+"/v1/status", &st)
	if !st.Done || st.Epoch != 6 {
		t.Fatalf("final status %+v", st)
	}
	if resp := postJSON(t, admin.URL+"/v1/step", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("step past the end: %s, want 409", resp.Status)
	}

	resp, err = http.Get(query.URL + "/v1/result")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s %v", resp.Status, err)
	}
	_, run, err := selectScenario(fixturePath, "")
	if err != nil {
		t.Fatal(err)
	}
	want, err := agilewatts.RunScenario(run)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(gotJSON)) != string(wantJSON) {
		t.Error("daemon result diverged from RunScenario on the same scenario file")
	}
}

func TestDaemonWhatIfRejects(t *testing.T) {
	_, query, _ := testDaemon(t, 0)
	for name, req := range map[string]whatIfRequest{
		"zero epochs":    {TargetNodes: 1},
		"negative nodes": {TargetNodes: -1, Epochs: 1},
	} {
		if resp := postJSON(t, query.URL+"/v1/whatif", req, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %s, want 400", name, resp.Status)
		}
	}
	resp, err := http.Post(query.URL+"/v1/whatif", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %s, want 400", resp.Status)
	}
}

// TestDaemonScaledClock runs the fleet on the scaled-time clock fast
// enough for a test: the whole 60ms schedule passes in well under a
// second of wall time, including a pause/resume cycle.
func TestDaemonScaledClock(t *testing.T) {
	d, query, admin := testDaemon(t, 50)
	if resp := postJSON(t, admin.URL+"/v1/pause", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("pause: %s", resp.Status)
	}
	stop := make(chan struct{})
	defer close(stop)
	go d.runClock(stop)

	time.Sleep(50 * time.Millisecond)
	var st statusReply
	getJSON(t, query.URL+"/v1/status", &st)
	if st.Epoch != 0 || !st.Paused {
		t.Fatalf("paused clock moved: %+v", st)
	}
	if resp := postJSON(t, admin.URL+"/v1/resume", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("resume: %s", resp.Status)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, query.URL+"/v1/status", &st)
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clock never finished the schedule: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The follow stream drains every epoch of a finished run and closes.
	resp, err := http.Get(query.URL + "/v1/telemetry?from=0&follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	if lines != st.Epochs {
		t.Errorf("follow stream carried %d epochs, want %d", lines, st.Epochs)
	}
}

// TestDaemonConcurrentWhatIf races what-if forks against the live
// clock: forks share only the memoizing runner with the parent, so
// concurrent hypotheticals must neither disturb the fleet nor trip the
// race detector.
func TestDaemonConcurrentWhatIf(t *testing.T) {
	d, query, admin := testDaemon(t, 200)
	stop := make(chan struct{})
	defer close(stop)
	go d.runClock(stop)

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(target int) {
			var wi whatIfReply
			data, _ := json.Marshal(whatIfRequest{TargetNodes: target, Epochs: 2, RunToEnd: true})
			resp, err := http.Post(query.URL+"/v1/whatif", "application/json", bytes.NewReader(data))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("whatif: %s", resp.Status)
				return
			}
			errs <- json.NewDecoder(resp.Body).Decode(&wi)
		}(1 + i)
	}
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	// Drain the schedule and make sure the fleet still finishes clean.
	deadline := time.Now().Add(10 * time.Second)
	var st statusReply
	for {
		getJSON(t, admin.URL+"/v1/status", &st)
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("clock never finished under concurrent what-ifs: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// ckptDaemon builds a manual-clock daemon that checkpoints every epoch
// into dir.
func ckptDaemon(t *testing.T, dir string) (*daemon, *httptest.Server, *httptest.Server) {
	t.Helper()
	name, run, err := selectScenario(fixturePath, "")
	if err != nil {
		t.Fatal(err)
	}
	opts := defaultDaemonOptions()
	opts.ckptDir = dir
	opts.ckptEveryEpochs = 1
	d, err := newDaemon(name, run, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	query := httptest.NewServer(d.queryMux())
	admin := httptest.NewServer(d.adminMux())
	t.Cleanup(query.Close)
	t.Cleanup(admin.Close)
	return d, query, admin
}

// TestDaemonCheckpointRecovery is the crash-safety contract in-process:
// a daemon that checkpoints every epoch dies (simply dropped on the
// floor — no graceful path runs), a fresh daemon pointed at the same
// directory resumes from the newest checkpoint, and the resumed fleet
// finishes with exactly the batch-path result.
func TestDaemonCheckpointRecovery(t *testing.T) {
	dir := t.TempDir()
	_, _, admin := ckptDaemon(t, dir)
	postJSON(t, admin.URL+"/v1/step?epochs=3", nil, nil)

	ckpts, err := filepath.Glob(filepath.Join(dir, "ckpt-*.awck"))
	if err != nil || len(ckpts) != 3 {
		t.Fatalf("checkpoints after 3 epochs: %v (err %v), want 3", ckpts, err)
	}

	d2, query2, admin2 := ckptDaemon(t, dir)
	if got := d2.live.Epoch(); got != 3 {
		t.Fatalf("recovered at epoch %d, want 3", got)
	}
	var st statusReply
	getJSON(t, query2.URL+"/v1/status", &st)
	for !st.Done {
		postJSON(t, admin2.URL+"/v1/step", nil, nil)
		getJSON(t, query2.URL+"/v1/status", &st)
	}
	resp, err := http.Get(query2.URL + "/v1/result")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s %v", resp.Status, err)
	}

	_, run, err := selectScenario(fixturePath, "")
	if err != nil {
		t.Fatal(err)
	}
	want, err := agilewatts.RunScenario(run)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(gotJSON)) != string(wantJSON) {
		t.Error("recovered run diverged from RunScenario on the same scenario file")
	}

	// The pruner keeps only the newest few checkpoints.
	ckpts, _ = filepath.Glob(filepath.Join(dir, "ckpt-*.awck"))
	if len(ckpts) > checkpointKeep {
		t.Errorf("%d checkpoints on disk, want at most %d: %v", len(ckpts), checkpointKeep, ckpts)
	}
}

// TestDaemonRecoverySkipsCorrupt pins the recovery ladder: a corrupt
// newest checkpoint (a crash mid-everything can leave one) is skipped
// with the fleet restored from the next one down, and a directory of
// only-corrupt checkpoints degrades to a fresh epoch-0 fleet rather
// than a dead daemon.
func TestDaemonRecoverySkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	_, _, admin := ckptDaemon(t, dir)
	postJSON(t, admin.URL+"/v1/step?epochs=2", nil, nil)

	// Corrupt the newest checkpoint; epoch 1's stays valid.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-000002.awck"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2, _, _ := ckptDaemon(t, dir)
	if got := d2.live.Epoch(); got != 1 {
		t.Errorf("recovered at epoch %d, want 1 (newest valid)", got)
	}

	// All corrupt: start fresh.
	if err := os.WriteFile(filepath.Join(dir, "ckpt-000001.awck"), []byte("also bad"), 0o644); err != nil {
		t.Fatal(err)
	}
	d3, _, _ := ckptDaemon(t, dir)
	if got := d3.live.Epoch(); got != 0 {
		t.Errorf("recovered at epoch %d from corrupt-only dir, want 0", got)
	}
}

// TestDaemonWhatIfBounds pins the fork-pool back-pressure: a full pool
// answers 429 without touching the fleet, and an expired deadline
// abandons the fork with 503.
func TestDaemonWhatIfBounds(t *testing.T) {
	name, run, err := selectScenario(fixturePath, "")
	if err != nil {
		t.Fatal(err)
	}
	opts := defaultDaemonOptions()
	opts.whatifMax = 0 // zero-capacity semaphore: every acquire fails
	d, err := newDaemon(name, run, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	query := httptest.NewServer(d.queryMux())
	t.Cleanup(query.Close)
	req := whatIfRequest{TargetNodes: 1, Epochs: 1}
	if resp := postJSON(t, query.URL+"/v1/whatif", req, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full pool: status %s, want 429", resp.Status)
	}

	opts = defaultDaemonOptions()
	opts.whatifTimeout = -time.Second // already expired: first step check trips
	d2, err := newDaemon(name, run, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	query2 := httptest.NewServer(d2.queryMux())
	t.Cleanup(query2.Close)
	if resp := postJSON(t, query2.URL+"/v1/whatif", req, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("expired deadline: status %s, want 503", resp.Status)
	}
}
