package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	agilewatts "repro"
)

// daemonOptions groups the crash-safety and back-pressure knobs main
// wires from flags; the zero value means no checkpointing and an
// unbounded-in-name-only what-if pool (callers should use
// defaultDaemonOptions).
type daemonOptions struct {
	// ckptDir enables self-checkpointing: every cadence hit writes the
	// fleet snapshot to ckpt-NNNNNN.awck in this directory (temp file +
	// atomic rename), and startup recovers from the newest valid one.
	ckptDir string
	// ckptEveryEpochs and ckptEvery are the checkpoint cadences: a
	// checkpoint after every N completed epochs, or once T wall time has
	// passed since the last one, whichever fires first. Zero disables
	// that cadence.
	ckptEveryEpochs int
	ckptEvery       time.Duration
	// whatifMax caps concurrent what-if forks (excess gets 429);
	// whatifTimeout bounds one fork's stepping time (expiry gets 503).
	whatifMax     int
	whatifTimeout time.Duration
}

// defaultDaemonOptions is the no-checkpointing default with the
// production what-if bounds.
func defaultDaemonOptions() daemonOptions {
	return daemonOptions{whatifMax: 4, whatifTimeout: 30 * time.Second}
}

// daemon owns one live fleet. A LiveScenario is single-goroutine, so
// every touch of d.live goes through d.mu: the scaled-time clock loop,
// the admin handlers and the query handlers all serialize on it. What-if
// queries fork under the lock and then step the fork outside it — a
// fork shares nothing mutable with the live fleet, so an expensive
// hypothetical never stalls the simulation it is asking about.
type daemon struct {
	name  string
	run   agilewatts.ScenarioRun
	scale float64
	opts  daemonOptions

	// whatif is the fork-pool semaphore: a slot per in-flight what-if.
	whatif chan struct{}

	mu     sync.Mutex
	live   *agilewatts.LiveScenario
	paused bool
	// closing tells follow streams the process is shutting down.
	closing bool
	// epochCh broadcasts fleet progress: closed and replaced under mu
	// whenever the live fleet moves, so follow streams wake exactly when
	// there is something new instead of polling.
	epochCh chan struct{}
	// lastCkptEpoch / lastCkptWall drive the checkpoint cadence; -1
	// means no checkpoint exists yet for this timeline.
	lastCkptEpoch int
	lastCkptWall  time.Time
}

func newDaemon(name string, run agilewatts.ScenarioRun, scale float64, opts daemonOptions) (*daemon, error) {
	live, err := agilewatts.NewLiveScenario(run)
	if err != nil {
		return nil, err
	}
	d := &daemon{
		name: name, run: run, scale: scale, opts: opts,
		whatif:  make(chan struct{}, opts.whatifMax),
		live:    live,
		epochCh: make(chan struct{}),

		lastCkptEpoch: -1,
		lastCkptWall:  time.Now(),
	}
	if opts.ckptDir != "" {
		if err := d.recoverFromCheckpoints(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// recoverFromCheckpoints restores the fleet from the newest valid
// checkpoint in the checkpoint directory, newest first. A corrupt or
// mismatched checkpoint is skipped with a logged warning — a crash mid-
// rename or a scenario-file edit must never brick the daemon — and when
// none restores the fleet starts from epoch 0.
func (d *daemon) recoverFromCheckpoints() error {
	if err := os.MkdirAll(d.opts.ckptDir, 0o755); err != nil {
		return fmt.Errorf("checkpoint dir: %w", err)
	}
	paths, err := filepath.Glob(filepath.Join(d.opts.ckptDir, "ckpt-*.awck"))
	if err != nil {
		return err
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, path := range paths {
		blob, err := os.ReadFile(path)
		if err == nil {
			var live *agilewatts.LiveScenario
			if live, err = agilewatts.RestoreLiveScenario(d.run, blob); err == nil {
				d.live = live
				d.lastCkptEpoch = live.Epoch()
				fmt.Fprintf(os.Stderr, "awserved: recovered epoch %d from %s\n", live.Epoch(), path)
				return nil
			}
		}
		fmt.Fprintf(os.Stderr, "awserved: skipping checkpoint %s: %v\n", path, err)
	}
	return nil
}

// wakeFollowersLocked broadcasts fleet progress to every follow stream:
// closing the channel releases all current waiters, the fresh channel
// collects the next round. Callers hold d.mu.
func (d *daemon) wakeFollowersLocked() {
	close(d.epochCh)
	d.epochCh = make(chan struct{})
}

// afterStepLocked runs the per-step bookkeeping: wake the follow
// streams and checkpoint if the cadence says so. Callers hold d.mu.
func (d *daemon) afterStepLocked() {
	d.wakeFollowersLocked()
	if d.opts.ckptDir == "" {
		return
	}
	byEpochs := d.opts.ckptEveryEpochs > 0 &&
		d.live.Epoch()-d.lastCkptEpoch >= d.opts.ckptEveryEpochs
	byWall := d.opts.ckptEvery > 0 && time.Since(d.lastCkptWall) >= d.opts.ckptEvery
	if byEpochs || byWall {
		d.checkpointLocked()
	}
}

// checkpointKeep bounds the checkpoint directory: older files beyond
// the newest few are pruned after every successful write.
const checkpointKeep = 3

// checkpointLocked writes the fleet snapshot to the checkpoint
// directory crash-safely: the bytes land in a temp file first and the
// final ckpt-NNNNNN.awck name appears only through an atomic rename, so
// a crash mid-write can never leave a half-checkpoint under a name
// recovery would trust. Failures are logged, not fatal — a full disk
// should degrade durability, not kill the simulation. Callers hold
// d.mu.
func (d *daemon) checkpointLocked() {
	blob, err := d.live.Snapshot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "awserved: checkpoint:", err)
		return
	}
	epoch := d.live.Epoch()
	final := filepath.Join(d.opts.ckptDir, fmt.Sprintf("ckpt-%06d.awck", epoch))
	tmp, err := os.CreateTemp(d.opts.ckptDir, ".ckpt-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "awserved: checkpoint:", err)
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), final)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		fmt.Fprintln(os.Stderr, "awserved: checkpoint:", werr)
		return
	}
	d.lastCkptEpoch = epoch
	d.lastCkptWall = time.Now()
	if paths, err := filepath.Glob(filepath.Join(d.opts.ckptDir, "ckpt-*.awck")); err == nil && len(paths) > checkpointKeep {
		sort.Strings(paths)
		for _, old := range paths[:len(paths)-checkpointKeep] {
			os.Remove(old)
		}
	}
}

// shutdown is the graceful-exit path: a final checkpoint if the fleet
// moved since the last one, and the closing broadcast that unblocks
// every follow stream so the HTTP servers can drain.
func (d *daemon) shutdown() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closing = true
	d.wakeFollowersLocked()
	if d.opts.ckptDir != "" && d.live.Epoch() != d.lastCkptEpoch {
		d.checkpointLocked()
	}
}

// runClock advances the fleet in scaled time: each epoch's simulated
// window costs window/scale of wall time. scale <= 0 means the fleet
// only moves when the admin API steps it.
func (d *daemon) runClock(stop <-chan struct{}) {
	if d.scale <= 0 {
		return
	}
	for {
		d.mu.Lock()
		if d.live.Done() {
			d.mu.Unlock()
			return
		}
		if d.paused {
			d.mu.Unlock()
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			continue
		}
		before := d.live.Clock()
		_, err := d.live.Step()
		after := d.live.Clock()
		if err == nil {
			d.afterStepLocked()
		}
		d.mu.Unlock()
		if err != nil {
			return
		}
		wall := time.Duration(float64(after-before) / d.scale)
		select {
		case <-stop:
			return
		case <-time.After(wall):
		}
	}
}

// queryMux serves the read-mostly surface: status, the per-epoch
// telemetry stream, the completed-epochs result, and what-if forks.
func (d *daemon) queryMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", d.handleStatus)
	mux.HandleFunc("/v1/telemetry", d.handleTelemetry)
	mux.HandleFunc("/v1/result", d.handleResult)
	mux.HandleFunc("/v1/whatif", d.handleWhatIf)
	return mux
}

// adminMux serves the mutating surface: manual stepping, the pause
// switch, and checkpoint download/upload.
func (d *daemon) adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/status", d.handleStatus)
	mux.HandleFunc("/v1/step", d.handleStep)
	mux.HandleFunc("/v1/pause", d.handlePause(true))
	mux.HandleFunc("/v1/resume", d.handlePause(false))
	mux.HandleFunc("/v1/snapshot", d.handleSnapshot)
	mux.HandleFunc("/v1/restore", d.handleRestore)
	return mux
}

func replyJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func replyError(w http.ResponseWriter, code int, err error) {
	replyJSON(w, code, map[string]string{"error": err.Error()})
}

func wantMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		replyError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s needs %s", r.URL.Path, method))
		return false
	}
	return true
}

type statusReply struct {
	Scenario  string  `json:"scenario"`
	Epoch     int     `json:"epoch"`
	Epochs    int     `json:"epochs"`
	Done      bool    `json:"done"`
	Paused    bool    `json:"paused"`
	ClockMS   float64 `json:"clock_ms"`
	TimeScale float64 `json:"time_scale"`
}

func (d *daemon) status() statusReply {
	return statusReply{
		Scenario:  d.name,
		Epoch:     d.live.Epoch(),
		Epochs:    d.live.Epochs(),
		Done:      d.live.Done(),
		Paused:    d.paused,
		ClockMS:   float64(d.live.Clock()) / 1e6,
		TimeScale: d.scale,
	}
}

func (d *daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	if !wantMethod(w, r, http.MethodGet) {
		return
	}
	d.mu.Lock()
	st := d.status()
	d.mu.Unlock()
	replyJSON(w, http.StatusOK, st)
}

// handleTelemetry streams one JSON document per completed epoch
// (NDJSON), starting at ?from=N (default 0). With ?follow=1 the stream
// stays open and emits each further epoch as the fleet completes it,
// until the scenario ends or the client goes away.
func (d *daemon) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	if !wantMethod(w, r, http.MethodGet) {
		return
	}
	from := 0
	if s := r.URL.Query().Get("from"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			replyError(w, http.StatusBadRequest, fmt.Errorf("bad from=%q: want a non-negative epoch index", s))
			return
		}
		from = v
	}
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for {
		d.mu.Lock()
		hist := d.live.History()
		done := d.live.Done()
		closing := d.closing
		wake := d.epochCh
		d.mu.Unlock()
		for ; from < len(hist); from++ {
			if err := enc.Encode(hist[from]); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if !follow || done || closing {
			return
		}
		// Block until the fleet actually moves (wake is closed under mu on
		// every step, restore and shutdown) or the client goes away — no
		// polling, and a dropped client releases its handler immediately.
		select {
		case <-r.Context().Done():
			return
		case <-wake:
		}
	}
}

func (d *daemon) handleResult(w http.ResponseWriter, r *http.Request) {
	if !wantMethod(w, r, http.MethodGet) {
		return
	}
	d.mu.Lock()
	res, err := d.live.Result()
	d.mu.Unlock()
	if err != nil {
		replyError(w, http.StatusConflict, err)
		return
	}
	replyJSON(w, http.StatusOK, res)
}

type whatIfRequest struct {
	// TargetNodes is forced as the active-node target for the next
	// Epochs epochs of the fork — "park all but N nodes".
	TargetNodes int `json:"target_nodes"`
	Epochs      int `json:"epochs"`
	// RunToEnd keeps stepping the fork (controller- or plan-driven
	// again) after the forced window, to the end of the schedule.
	RunToEnd bool `json:"run_to_end"`
}

type whatIfSummary struct {
	FleetEnergyJ   float64 `json:"fleet_energy_j"`
	AvgFleetPowerW float64 `json:"avg_fleet_power_w"`
	QPSPerWatt     float64 `json:"qps_per_watt"`
	WorstP99US     float64 `json:"worst_p99_us"`
	Unparks        int     `json:"unparks"`
	Restarts       int     `json:"restarts"`
}

type whatIfReply struct {
	ForkedAt    int                         `json:"forked_at"`
	TargetNodes int                         `json:"target_nodes"`
	Forced      int                         `json:"forced_epochs"`
	Epochs      []agilewatts.FleetTelemetry `json:"epochs"`
	// Summary aggregates the fork's whole realized timeline (shared
	// prefix + hypothetical future); present once the fork has any
	// completed epochs.
	Summary *whatIfSummary `json:"summary,omitempty"`
}

// handleWhatIf answers a hypothetical against a fork of the live fleet:
// the fork replays the live history bit-identically, the forced target
// overrides its controller for the requested window, and the live fleet
// never observes any of it.
func (d *daemon) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if !wantMethod(w, r, http.MethodPost) {
		return
	}
	var req whatIfRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		replyError(w, http.StatusBadRequest, fmt.Errorf("bad what-if request: %w", err))
		return
	}
	if req.Epochs < 1 {
		replyError(w, http.StatusBadRequest, fmt.Errorf("bad what-if request: epochs must be >= 1, got %d", req.Epochs))
		return
	}
	if req.TargetNodes < 0 {
		replyError(w, http.StatusBadRequest, fmt.Errorf("bad what-if request: target_nodes must be >= 0, got %d", req.TargetNodes))
		return
	}
	// Bounded fork pool: a what-if steps a whole fleet fork, so an
	// unbounded burst of them is a CPU-exhaustion hole. Full pool says
	// try-again-later rather than queueing — the live fleet keeps moving
	// either way.
	select {
	case d.whatif <- struct{}{}:
		defer func() { <-d.whatif }()
	default:
		replyError(w, http.StatusTooManyRequests,
			fmt.Errorf("what-if pool exhausted (%d in flight); retry later", cap(d.whatif)))
		return
	}
	deadline := time.Now().Add(d.opts.whatifTimeout)
	overdue := func() bool {
		return time.Now().After(deadline) || r.Context().Err() != nil
	}
	d.mu.Lock()
	fork := d.live.Fork()
	d.mu.Unlock()

	reply := whatIfReply{ForkedAt: fork.Epoch(), TargetNodes: req.TargetNodes}
	for i := 0; i < req.Epochs && !fork.Done(); i++ {
		if overdue() {
			replyError(w, http.StatusServiceUnavailable,
				fmt.Errorf("what-if abandoned after %v (%d epochs stepped)", d.opts.whatifTimeout, len(reply.Epochs)))
			return
		}
		tel, err := fork.StepTarget(req.TargetNodes)
		if err != nil {
			replyError(w, http.StatusInternalServerError, err)
			return
		}
		reply.Forced++
		reply.Epochs = append(reply.Epochs, tel)
	}
	for req.RunToEnd && !fork.Done() {
		if overdue() {
			replyError(w, http.StatusServiceUnavailable,
				fmt.Errorf("what-if abandoned after %v (%d epochs stepped)", d.opts.whatifTimeout, len(reply.Epochs)))
			return
		}
		tel, err := fork.Step()
		if err != nil {
			replyError(w, http.StatusInternalServerError, err)
			return
		}
		reply.Epochs = append(reply.Epochs, tel)
	}
	if fork.Epoch() > 0 {
		res, err := fork.Result()
		if err != nil {
			replyError(w, http.StatusInternalServerError, err)
			return
		}
		reply.Summary = &whatIfSummary{
			FleetEnergyJ:   res.FleetEnergyJ,
			AvgFleetPowerW: res.AvgFleetPowerW,
			QPSPerWatt:     res.QPSPerWatt,
			WorstP99US:     res.WorstP99US,
			Unparks:        res.Unparks,
			Restarts:       res.Restarts,
		}
	}
	replyJSON(w, http.StatusOK, reply)
}

// handleStep advances the live fleet ?epochs=N epochs (default 1) —
// the manual clock for -time-scale 0 deployments and tests.
func (d *daemon) handleStep(w http.ResponseWriter, r *http.Request) {
	if !wantMethod(w, r, http.MethodPost) {
		return
	}
	n := 1
	if s := r.URL.Query().Get("epochs"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			replyError(w, http.StatusBadRequest, fmt.Errorf("bad epochs=%q: want a positive count", s))
			return
		}
		n = v
	}
	var tels []agilewatts.FleetTelemetry
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.live.Done() {
		replyError(w, http.StatusConflict, fmt.Errorf("scenario finished (all %d epochs stepped)", d.live.Epochs()))
		return
	}
	for i := 0; i < n && !d.live.Done(); i++ {
		tel, err := d.live.Step()
		if err != nil {
			replyError(w, http.StatusInternalServerError, err)
			return
		}
		tels = append(tels, tel)
		d.afterStepLocked()
	}
	replyJSON(w, http.StatusOK, tels)
}

func (d *daemon) handlePause(pause bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		d.mu.Lock()
		d.paused = pause
		st := d.status()
		d.mu.Unlock()
		replyJSON(w, http.StatusOK, st)
	}
}

// handleSnapshot downloads the fleet checkpoint: the exact bytes
// /v1/restore (or RestoreLiveScenario in another process) rebuilds the
// fleet from, with bit-identical future behavior.
func (d *daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !wantMethod(w, r, http.MethodGet) {
		return
	}
	d.mu.Lock()
	blob, err := d.live.Snapshot()
	epoch := d.live.Epoch()
	d.mu.Unlock()
	if err != nil {
		replyError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Scenario-Epoch", strconv.Itoa(epoch))
	w.Write(blob)
}

// handleRestore replaces the live fleet with the checkpoint in the
// request body. The checkpoint must have been taken from this
// scenario's configuration; a mismatch (or any corruption) rejects the
// upload and leaves the current fleet untouched.
func (d *daemon) handleRestore(w http.ResponseWriter, r *http.Request) {
	if !wantMethod(w, r, http.MethodPost) {
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		replyError(w, http.StatusBadRequest, err)
		return
	}
	live, err := agilewatts.RestoreLiveScenario(d.run, blob)
	if err != nil {
		replyError(w, http.StatusUnprocessableEntity, err)
		return
	}
	d.mu.Lock()
	d.live = live
	// The restored fleet is a new timeline: followers re-read history,
	// and the checkpoint cadence restarts from the restored epoch.
	d.lastCkptEpoch = -1
	d.wakeFollowersLocked()
	st := d.status()
	d.mu.Unlock()
	replyJSON(w, http.StatusOK, st)
}
