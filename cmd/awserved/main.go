// Command awserved serves a live fleet simulation over HTTP: it loads a
// declarative scenario file, steps the warm fleet through its schedule
// in scaled time, streams per-epoch telemetry, and answers what-if
// queries ("park all but 2 nodes for the next hour") against a fork of
// the fleet — the live simulation never observes them.
//
// Usage:
//
//	awserved -scenario-file testdata/scenarios/crash-under-spike.json \
//	         -addr :7070 -admin-addr :7071 -time-scale 60
//
// The API splits in two. The query port (-addr) is read-mostly:
//
//	GET  /v1/status            scenario name, epoch progress, sim clock
//	GET  /v1/telemetry?from=N  NDJSON, one document per completed epoch
//	     &follow=1             keep streaming epochs as they complete
//	GET  /v1/result            ScenarioResult over the completed epochs
//	POST /v1/whatif            {"target_nodes":2,"epochs":3,"run_to_end":true}
//
// The admin port (-admin-addr) mutates the fleet:
//
//	POST /v1/step?epochs=N     advance manually (the -time-scale 0 clock)
//	POST /v1/pause, /v1/resume stop and restart the scaled-time clock
//	GET  /v1/snapshot          download the fleet checkpoint (binary)
//	POST /v1/restore           replace the fleet from a checkpoint
//
// -time-scale is the ratio of simulated to wall time (60 = a simulated
// minute per wall second); 0 (the default) runs no clock at all — the
// fleet moves only on /v1/step. A multi-document scenario file needs
// -scenario NAME to pick the document to serve.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	agilewatts "repro"
)

func main() {
	scenarioFile := flag.String("scenario-file", "",
		"declarative scenario file (JSON; multiple concatenated documents allowed)")
	scenarioName := flag.String("scenario", "",
		"scenario name to serve when the file holds several documents")
	addr := flag.String("addr", ":7070", "query API listen address")
	adminAddr := flag.String("admin-addr", ":7071", "admin API listen address")
	timeScale := flag.Float64("time-scale", 0,
		"simulated-to-wall time ratio (60 = one simulated minute per second; 0 = manual stepping only)")
	flag.Parse()

	if *scenarioFile == "" {
		fatal(fmt.Errorf("-scenario-file is required"))
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}
	name, run, err := selectScenario(*scenarioFile, *scenarioName)
	if err != nil {
		fatal(err)
	}
	d, err := newDaemon(name, run, *timeScale)
	if err != nil {
		fatal(err)
	}

	stop := make(chan struct{})
	go d.runClock(stop)
	go serve("admin", *adminAddr, d.adminMux())
	fmt.Fprintf(os.Stderr, "awserved: scenario %q, %d epochs, query %s, admin %s, time-scale %g\n",
		name, d.live.Epochs(), *addr, *adminAddr, *timeScale)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
		os.Exit(0)
	}()
	serve("query", *addr, d.queryMux())
}

// selectScenario loads the (possibly multi-document) scenario file and
// picks the document to serve: the only one, or the one -scenario
// names.
func selectScenario(path, name string) (string, agilewatts.ScenarioRun, error) {
	files, err := agilewatts.LoadScenarioFiles(path)
	if err != nil {
		return "", agilewatts.ScenarioRun{}, err
	}
	var picked *agilewatts.ScenarioFile
	switch {
	case name != "":
		for i := range files {
			if files[i].Name == name {
				picked = &files[i]
			}
		}
		if picked == nil {
			var names []string
			for _, f := range files {
				names = append(names, f.Name)
			}
			return "", agilewatts.ScenarioRun{}, fmt.Errorf(
				"scenario %q not in %s (have: %s)", name, path, strings.Join(names, ", "))
		}
	case len(files) == 1:
		picked = &files[0]
	default:
		var names []string
		for _, f := range files {
			names = append(names, f.Name)
		}
		return "", agilewatts.ScenarioRun{}, fmt.Errorf(
			"%s holds %d scenarios; pick one with -scenario (have: %s)",
			path, len(files), strings.Join(names, ", "))
	}
	run, err := agilewatts.ScenarioRunFromFile(*picked)
	if err != nil {
		return "", agilewatts.ScenarioRun{}, err
	}
	label := picked.Name
	if label == "" {
		label = "file"
	}
	return label, run, nil
}

func serve(which, addr string, mux *http.ServeMux) {
	if err := http.ListenAndServe(addr, mux); err != nil {
		fatal(fmt.Errorf("%s listener: %w", which, err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awserved:", err)
	os.Exit(1)
}
