// Command awserved serves a live fleet simulation over HTTP: it loads a
// declarative scenario file, steps the warm fleet through its schedule
// in scaled time, streams per-epoch telemetry, and answers what-if
// queries ("park all but 2 nodes for the next hour") against a fork of
// the fleet — the live simulation never observes them.
//
// Usage:
//
//	awserved -scenario-file testdata/scenarios/crash-under-spike.json \
//	         -addr :7070 -admin-addr :7071 -time-scale 60
//
// The API splits in two. The query port (-addr) is read-mostly:
//
//	GET  /v1/status            scenario name, epoch progress, sim clock
//	GET  /v1/telemetry?from=N  NDJSON, one document per completed epoch
//	     &follow=1             keep streaming epochs as they complete
//	GET  /v1/result            ScenarioResult over the completed epochs
//	POST /v1/whatif            {"target_nodes":2,"epochs":3,"run_to_end":true}
//
// The admin port (-admin-addr) mutates the fleet:
//
//	POST /v1/step?epochs=N     advance manually (the -time-scale 0 clock)
//	POST /v1/pause, /v1/resume stop and restart the scaled-time clock
//	GET  /v1/snapshot          download the fleet checkpoint (binary)
//	POST /v1/restore           replace the fleet from a checkpoint
//
// -time-scale is the ratio of simulated to wall time (60 = a simulated
// minute per wall second); 0 (the default) runs no clock at all — the
// fleet moves only on /v1/step. A multi-document scenario file needs
// -scenario NAME to pick the document to serve.
//
// With -checkpoint-dir the daemon is crash-safe: it checkpoints the
// fleet automatically (every -checkpoint-every-epochs epochs and/or
// every -checkpoint-every-secs of wall time, written via temp file +
// atomic rename), recovers from the newest valid checkpoint at startup,
// and takes a final checkpoint on SIGINT/SIGTERM before draining both
// HTTP listeners. What-if forks are bounded: at most -whatif-max run
// concurrently (excess gets 429) and each is abandoned after
// -whatif-timeout-ms (503).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	agilewatts "repro"
)

func main() {
	scenarioFile := flag.String("scenario-file", "",
		"declarative scenario file (JSON; multiple concatenated documents allowed)")
	scenarioName := flag.String("scenario", "",
		"scenario name to serve when the file holds several documents")
	addr := flag.String("addr", ":7070", "query API listen address")
	adminAddr := flag.String("admin-addr", ":7071", "admin API listen address")
	timeScale := flag.Float64("time-scale", 0,
		"simulated-to-wall time ratio (60 = one simulated minute per second; 0 = manual stepping only)")
	ckptDir := flag.String("checkpoint-dir", "",
		"directory for automatic fleet checkpoints; startup recovers from the newest valid one")
	ckptEpochs := flag.Int("checkpoint-every-epochs", 1,
		"checkpoint after every N completed epochs (0 disables the epoch cadence)")
	ckptSecs := flag.Float64("checkpoint-every-secs", 0,
		"checkpoint once this much wall time passed since the last one (0 disables the wall cadence)")
	whatifMax := flag.Int("whatif-max", 4, "maximum concurrent what-if forks (excess gets 429)")
	whatifTimeoutMS := flag.Int("whatif-timeout-ms", 30000,
		"abandon a what-if fork after this much wall time (it gets 503)")
	flag.Parse()

	if *scenarioFile == "" {
		fatal(fmt.Errorf("-scenario-file is required"))
	}
	if flag.NArg() > 0 {
		fatal(fmt.Errorf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}
	if *ckptDir == "" && (*ckptSecs != 0 || !flagIsDefault("checkpoint-every-epochs")) {
		fatal(fmt.Errorf("checkpoint cadence flags need -checkpoint-dir"))
	}
	if *whatifMax < 1 {
		fatal(fmt.Errorf("-whatif-max must be >= 1, got %d", *whatifMax))
	}
	if *whatifTimeoutMS < 1 {
		fatal(fmt.Errorf("-whatif-timeout-ms must be >= 1, got %d", *whatifTimeoutMS))
	}
	name, run, err := selectScenario(*scenarioFile, *scenarioName)
	if err != nil {
		fatal(err)
	}
	opts := defaultDaemonOptions()
	opts.ckptDir = *ckptDir
	opts.ckptEveryEpochs = *ckptEpochs
	opts.ckptEvery = time.Duration(*ckptSecs * float64(time.Second))
	opts.whatifMax = *whatifMax
	opts.whatifTimeout = time.Duration(*whatifTimeoutMS) * time.Millisecond
	d, err := newDaemon(name, run, *timeScale, opts)
	if err != nil {
		fatal(err)
	}

	stop := make(chan struct{})
	clockDone := make(chan struct{})
	go func() {
		d.runClock(stop)
		close(clockDone)
	}()
	query := &http.Server{Addr: *addr, Handler: d.queryMux()}
	admin := &http.Server{Addr: *adminAddr, Handler: d.adminMux()}
	go serve("admin", admin)
	go serve("query", query)
	fmt.Fprintf(os.Stderr, "awserved: scenario %q, %d epochs, query %s, admin %s, time-scale %g\n",
		name, d.live.Epochs(), *addr, *adminAddr, *timeScale)

	// Graceful shutdown: stop the clock and wait for it to finish the
	// epoch it is mid-way through (a step is atomic under the daemon
	// lock), take a final checkpoint, then drain both HTTP servers —
	// never exit from under an epoch in flight or a half-written reply.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	close(stop)
	<-clockDone
	d.shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := admin.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "awserved: admin shutdown:", err)
	}
	if err := query.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "awserved: query shutdown:", err)
	}
}

// flagIsDefault reports whether the named flag was left at its default
// (flag.Visit only walks the flags the command line actually set).
func flagIsDefault(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return !set
}

// selectScenario loads the (possibly multi-document) scenario file and
// picks the document to serve: the only one, or the one -scenario
// names.
func selectScenario(path, name string) (string, agilewatts.ScenarioRun, error) {
	files, err := agilewatts.LoadScenarioFiles(path)
	if err != nil {
		return "", agilewatts.ScenarioRun{}, err
	}
	var picked *agilewatts.ScenarioFile
	switch {
	case name != "":
		for i := range files {
			if files[i].Name == name {
				picked = &files[i]
			}
		}
		if picked == nil {
			var names []string
			for _, f := range files {
				names = append(names, f.Name)
			}
			return "", agilewatts.ScenarioRun{}, fmt.Errorf(
				"scenario %q not in %s (have: %s)", name, path, strings.Join(names, ", "))
		}
	case len(files) == 1:
		picked = &files[0]
	default:
		var names []string
		for _, f := range files {
			names = append(names, f.Name)
		}
		return "", agilewatts.ScenarioRun{}, fmt.Errorf(
			"%s holds %d scenarios; pick one with -scenario (have: %s)",
			path, len(files), strings.Join(names, ", "))
	}
	run, err := agilewatts.ScenarioRunFromFile(*picked)
	if err != nil {
		return "", agilewatts.ScenarioRun{}, err
	}
	label := picked.Name
	if label == "" {
		label = "file"
	}
	return label, run, nil
}

func serve(which string, srv *http.Server) {
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(fmt.Errorf("%s listener: %w", which, err))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awserved:", err)
	os.Exit(1)
}
