//go:build unix

package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	agilewatts "repro"
)

// chaosBinary builds the real awserved binary once per test run; the
// chaos test exercises the actual process — signals, listeners,
// checkpoint files — not an in-process stand-in. The binary is built
// with -race so the kill/recover cycle runs race-instrumented in CI.
func chaosBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "awserved")
	cmd := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freeAddr grabs a loopback port the kernel considers free right now.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startChaosDaemon launches the binary against the fixture with
// every-epoch checkpointing and waits for the query API to answer.
func startChaosDaemon(t *testing.T, bin, queryAddr, adminAddr, ckptDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-scenario-file", fixturePath,
		"-addr", queryAddr,
		"-admin-addr", adminAddr,
		"-checkpoint-dir", ckptDir,
		"-checkpoint-every-epochs", "1")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + queryAddr + "/v1/status")
		if err == nil {
			resp.Body.Close()
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("daemon on %s never answered: %v", queryAddr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func chaosStatus(t *testing.T, queryAddr string) statusReply {
	t.Helper()
	var st statusReply
	getJSON(t, "http://"+queryAddr+"/v1/status", &st)
	return st
}

// TestChaosKillRestart is the crash-recovery contract end to end on the
// real binary: SIGKILL the daemon mid-scenario — no graceful path, no
// final checkpoint — restart it on the same checkpoint directory, and
// the recovered run must finish with a /v1/result byte-identical to the
// batch engine on the same scenario file. Then SIGTERM the survivor and
// require a clean exit.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a real binary")
	}
	bin := chaosBinary(t)
	ckptDir := t.TempDir()
	queryAddr, adminAddr := freeAddr(t), freeAddr(t)

	cmd := startChaosDaemon(t, bin, queryAddr, adminAddr, ckptDir)
	postJSON(t, "http://"+adminAddr+"/v1/step?epochs=3", nil, nil)
	if st := chaosStatus(t, queryAddr); st.Epoch != 3 {
		t.Fatalf("pre-kill epoch %d, want 3", st.Epoch)
	}

	// SIGKILL: the process gets no chance to flush anything.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	cmd2 := startChaosDaemon(t, bin, queryAddr, adminAddr, ckptDir)
	defer func() {
		if cmd2.ProcessState == nil {
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()
	st := chaosStatus(t, queryAddr)
	if st.Epoch != 3 {
		t.Fatalf("recovered epoch %d, want 3", st.Epoch)
	}
	for !st.Done {
		postJSON(t, "http://"+adminAddr+"/v1/step", nil, nil)
		st = chaosStatus(t, queryAddr)
	}

	resp, err := http.Get("http://" + queryAddr + "/v1/result")
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s %v", resp.Status, err)
	}
	_, run, err := selectScenario(fixturePath, "")
	if err != nil {
		t.Fatal(err)
	}
	want, err := agilewatts.RunScenario(run)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.MarshalIndent(want, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(gotJSON)) != string(wantJSON) {
		t.Error("killed-and-recovered run diverged from RunScenario on the same scenario file")
	}

	// Graceful exit: SIGTERM drains the listeners and exits 0.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd2.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			t.Errorf("SIGTERM exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		cmd2.Process.Kill()
		t.Fatal("daemon ignored SIGTERM for 10s")
	}

	ckpts, err := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.awck"))
	if err != nil || len(ckpts) == 0 {
		t.Fatalf("no checkpoints survive the run: %v (err %v)", ckpts, err)
	}
	if len(ckpts) > checkpointKeep {
		t.Errorf("%d checkpoints on disk, want at most %d", len(ckpts), checkpointKeep)
	}
}
