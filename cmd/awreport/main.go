// Command awreport runs the complete reproduction — every table, figure,
// ablation and extension — and writes a single self-contained report
// (plain text or markdown-ish) to a file or stdout. This is the artifact
// a reviewer would skim.
//
// Usage:
//
//	awreport [-quick] [-o report.txt]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	agilewatts "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity simulation")
	out := flag.String("o", "", "output file (default stdout)")
	seed := flag.Uint64("seed", 0, "override experiment seed")
	flag.Parse()

	opts := agilewatts.DefaultOptions()
	if *quick {
		opts = agilewatts.QuickOptions()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	fmt.Fprintln(w, "AgileWatts reproduction report")
	fmt.Fprintln(w, "==============================")
	fmt.Fprintf(w, "generated: %s   seed: %d   quick: %v\n\n",
		time.Now().Format(time.RFC3339), opts.Seed, *quick)

	sections := []struct {
		title string
		names []string
	}{
		{"Hardware model (Tables 1-4, Sec. 5.2)", []string{
			agilewatts.ExpTable1, agilewatts.ExpTable2, agilewatts.ExpTable3,
			agilewatts.ExpTable4, agilewatts.ExpLatency}},
		{"Motivation and analytical models (Sec. 2, 6.3, 7.5)", []string{
			agilewatts.ExpMotivation, agilewatts.ExpValidation, agilewatts.ExpSnoop}},
		{"Evaluation (Figs. 8-13, Table 5)", []string{
			agilewatts.ExpFigure8, agilewatts.ExpFigure9, agilewatts.ExpFigure10,
			agilewatts.ExpFigure11, agilewatts.ExpFigure12, agilewatts.ExpFigure13,
			agilewatts.ExpTable5}},
		{"Extensions and ablations", []string{
			agilewatts.ExpAMD, agilewatts.ExpRaceToHalt, agilewatts.ExpPkgIdle,
			agilewatts.ExpBreakdown, agilewatts.ExpAblateGovernor,
			agilewatts.ExpAblateZones, agilewatts.ExpAblatePower,
			agilewatts.ExpAblateNoise}},
	}
	for _, sec := range sections {
		fmt.Fprintf(w, "## %s\n\n", sec.title)
		for _, name := range sec.names {
			if err := agilewatts.RunExperiment(name, opts, w); err != nil {
				fatal(err)
			}
			w.Flush()
		}
	}
	fmt.Fprintln(w, "end of report")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awreport:", err)
	os.Exit(1)
}
