package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	agilewatts "repro"
)

func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validScenarioDoc = `{
  "schedule": {"shape": "constant", "base_qps": 100000, "total_ms": 30},
  "fleet": {"nodes": 2, "warmup_ms": 5},
  "epoch_ms": 10
}`

const invalidScenarioDoc = `{
  "schedule": {"shape": "constant", "base_qps": 100000, "total_ms": 30},
  "fleet": {"nodes": 2},
  "epoch_ms": 10,
  "faults": {"nodes": [
    {"node": 0, "kind": "crash", "start_ms": 0, "end_ms": 10},
    {"node": 0, "kind": "crash", "start_ms": 5, "end_ms": 15}
  ]}
}`

func TestSweepScenarioFileValid(t *testing.T) {
	var out bytes.Buffer
	if err := sweepScenarioFile(writeScenario(t, validScenarioDoc), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	wantHeader := "epoch,start_ms,end_ms,phase,rate_qps,active_nodes,parked_nodes,down_nodes,unparks,restarts,fleet_w,fleet_qps,qps_per_w,worst_p99_us"
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	if len(lines) != 4 { // header + 3 epochs of 10ms over 30ms
		t.Errorf("emitted %d lines, want 4:\n%s", len(lines), out.String())
	}
}

// TestSweepScenarioFileInvalid pins the no-partial-run contract: the
// helper returns the Normalize error verbatim — the text fatal prints
// before exiting non-zero — and emits no CSV, not even the header.
func TestSweepScenarioFileInvalid(t *testing.T) {
	path := writeScenario(t, invalidScenarioDoc)
	var out bytes.Buffer
	err := sweepScenarioFile(path, &out)
	if err == nil {
		t.Fatal("invalid scenario file ran")
	}
	if out.Len() != 0 {
		t.Errorf("invalid file produced partial output:\n%s", out.String())
	}
	run, lerr := agilewatts.LoadScenarioFile(path)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if want := agilewatts.ValidateScenario(run); want == nil || err.Error() != want.Error() {
		t.Errorf("CLI error %q != ValidateScenario error %q", err, want)
	}
}

func TestSweepScenarioFileMissing(t *testing.T) {
	var out bytes.Buffer
	if err := sweepScenarioFile(filepath.Join(t.TempDir(), "absent.json"), &out); err == nil {
		t.Fatal("missing scenario file ran")
	}
	if out.Len() != 0 {
		t.Error("missing file produced output")
	}
}
