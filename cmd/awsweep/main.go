// Command awsweep runs a single service/configuration sweep and emits a
// CSV series — the raw data behind the paper's figures, for custom
// plotting or what-if exploration.
//
// Usage:
//
//	awsweep -service memcached -config AW -rates 10000,100000,500000
//
// With -nodes > 1 (or -cluster-dispatch set) the sweep runs an N-node
// fleet per rate point through the cluster layer and emits fleet-level
// columns instead:
//
//	awsweep -nodes 8 -cluster-dispatch consolidate -rates 10000,100000
//
// With -scenario set, each rate point becomes the base rate of a
// time-varying schedule stepped in -epoch-ms intervals, and the output
// is the per-epoch fleet timeline (one row per epoch per rate):
//
//	awsweep -nodes 8 -scenario diurnal -epoch-ms 30 -rates 800000
//
// Adding -replicas K to a scenario sweep switches the fleet to shared
// node seeds — identical per-node timelines then collapse to one
// simulated equivalence class — and runs K extra seeded replicas per
// class, appending 95% confidence-interval columns to each epoch row.
// That is what makes very large -nodes values (100K+) tractable:
//
//	awsweep -nodes 100000 -scenario diurnal -epoch-ms 30 -replicas 4 -rates 80000000000 -v
//
// Adding -controller runs the scenario closed-loop: the named fleet
// controller (oracle, reactive or predictive) sizes the active set from
// epoch telemetry instead of the precomputed plan, a target_nodes column
// is appended to each epoch row, and -v reports the controller's
// decisions-per-epoch alongside the cache statistics. -ctrl-up,
// -ctrl-down and -ctrl-cooldown tune the reactive hysteresis:
//
//	awsweep -nodes 8 -scenario spike -epoch-ms 20 -controller reactive -rates 800000 -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	agilewatts "repro"
)

func main() {
	service := flag.String("service", "memcached", "service profile: memcached|kafka|mysql")
	config := flag.String("config", "Baseline", "platform configuration name (see -configs)")
	rates := flag.String("rates", "10000,50000,100000,200000,300000,400000,500000", "comma-separated QPS points")
	seed := flag.Uint64("seed", 1, "simulation seed")
	durMS := flag.Int("duration-ms", 400, "measured window per point (ms)")
	snoop := flag.Float64("snoop-rate", 0, "per-core snoop rate (1/s)")
	dispatch := flag.String("dispatch", "",
		"dispatch policy: "+strings.Join(agilewatts.DispatchPolicies(), "|"))
	loadgen := flag.String("loadgen", "",
		"load generator: "+strings.Join(agilewatts.LoadGenerators(), "|"))
	connections := flag.Int("connections", 0,
		"closed-loop connection count (required with -loadgen closed-loop)")
	nodes := flag.Int("nodes", 1, "fleet size; > 1 sweeps an N-node cluster")
	clusterDispatch := flag.String("cluster-dispatch", "",
		"cluster load-partitioning policy (implies a cluster sweep): "+
			strings.Join(agilewatts.ClusterPolicies(), "|"))
	park := flag.Bool("park-drained", true,
		"park nodes the cluster policy drains (package deep idle)")
	scenarioName := flag.String("scenario", "",
		"time-varying load shape (implies a scenario sweep): "+
			strings.Join(agilewatts.ScenarioNames(), "|"))
	epochMS := flag.Int("epoch-ms", 0,
		"scenario re-dispatch interval in ms (default: one epoch per schedule)")
	coldEpochs := flag.Bool("cold-epochs", false,
		"run scenarios on the legacy cold-start engine (fresh simulations + "+
			"synthetic unpark penalty per epoch) instead of the warm resumable path")
	replicas := flag.Int("replicas", 0,
		"scenario sweeps only: K seeded replicas per timeline equivalence class; "+
			"switches the fleet to shared node seeds (identical timelines collapse "+
			"to one simulated class) and appends 95% CI columns to the CSV")
	controller := flag.String("controller", "",
		"scenario sweeps only: closed-loop fleet controller (warm path): "+
			strings.Join(agilewatts.FleetControllers(), "|")+
			"; appends a target_nodes column (default: open-loop plan)")
	ctrlUp := flag.Float64("ctrl-up", 0,
		"reactive controller scale-up utilization threshold (default 0.75)")
	ctrlDown := flag.Float64("ctrl-down", 0,
		"reactive controller scale-down utilization threshold (default 0.40)")
	ctrlCooldown := flag.Int("ctrl-cooldown", 0,
		"reactive controller minimum epochs between target changes (default 2)")
	overload := flag.String("overload", "",
		"scenario sweeps only: admission-control policy past the active fleet's capacity: "+
			strings.Join(agilewatts.OverloadPolicies(), "|")+
			"; appends saturated and shedded_requests columns (default: admit everything)")
	overloadMaxUtil := flag.Float64("overload-max-util", 0,
		"per-node utilization the admission capacity is computed at (default 0.85)")
	overloadBacklogSec := flag.Float64("overload-backlog-sec", 0,
		"queue policy backlog bound, in seconds of full-fleet capacity (default 1.0)")
	verbose := flag.Bool("v", false,
		"print sweep-executor cache statistics (hits/misses, interval timeline "+
			"runs included) to stderr after the sweep")
	configs := flag.Bool("configs", false, "list configuration names and exit")
	scenarioFile := flag.String("scenario-file", "",
		"declarative scenario file (JSON: schedule + fleet + elasticity + faults); "+
			"runs it and emits the per-epoch timeline CSV instead of a rate sweep")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := checkFlagCombos(set); err != nil {
		fatal(err)
	}

	if *scenarioFile != "" {
		if err := sweepScenarioFile(*scenarioFile, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *configs {
		for _, c := range agilewatts.Configs() {
			fmt.Printf("%-22s turbo=%v menu=%v\n", c.Name, c.Turbo, c.Menu)
		}
		return
	}

	if *connections != 0 && *loadgen != agilewatts.LoadClosedLoop {
		// Bare ClosedLoopConnections would silently switch the sweep to
		// closed-loop and ignore -rates; demand intent.
		fatal(fmt.Errorf("-connections requires -loadgen closed-loop"))
	}
	if *nodes < 1 {
		fatal(fmt.Errorf("-nodes must be >= 1, got %d", *nodes))
	}

	prof, err := agilewatts.ServiceByName(*service)
	if err != nil {
		fatal(err)
	}
	cfg, err := agilewatts.ConfigByName(*config)
	if err != nil {
		fatal(err)
	}

	scenarioMode := *scenarioName != ""
	clustered := *nodes > 1 || *clusterDispatch != ""
	if *replicas > 0 && !scenarioMode {
		fatal(fmt.Errorf("-replicas requires -scenario (replicas are a scenario-engine feature)"))
	}
	if *replicas > 0 && *coldEpochs {
		fatal(fmt.Errorf("-replicas requires the warm path (drop -cold-epochs)"))
	}
	if *controller != "" && !scenarioMode {
		fatal(fmt.Errorf("-controller requires -scenario (controllers drive the scenario fleet)"))
	}
	if scenarioMode {
		header := "base_qps,epoch,start_ms,end_ms,phase,rate_qps,active_nodes,parked_nodes,unparks,fleet_w,fleet_qps,qps_per_w,worst_p99_us"
		if *controller != "" {
			header += ",target_nodes"
		}
		if *overload != "" {
			header += ",saturated,shedded_requests"
		}
		if *replicas > 0 {
			header += ",fleet_w_lo,fleet_w_hi,qps_per_w_lo,qps_per_w_hi,worst_p99_lo_us,worst_p99_hi_us"
		}
		fmt.Println(header)
	} else if clustered {
		fmt.Println("rate_qps,nodes,active_nodes,idle_nodes,fleet_w,w_per_node,fleet_qps,qps_per_w,server_avg_us,server_p99_us,worst_p99_us,e2e_p99_us")
	} else {
		fmt.Println("rate_qps,avg_core_w,package_w,server_avg_us,server_p99_us,e2e_avg_us,e2e_p99_us,c0,c1,c6a,c1e,c6ae,c6,turbo_fraction")
	}
	var ctrlChanges, ctrlEpochs int
	var ovSaturated int
	var ovShedded, ovBacklog float64
	for _, part := range strings.Split(*rates, ",") {
		rate, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad rate %q: %w", part, err))
		}
		run := agilewatts.ServiceRun{
			Platform:        cfg,
			Service:         prof,
			RateQPS:         rate,
			Seed:            *seed,
			DurationNS:      agilewatts.Duration(*durMS) * 1_000_000,
			SnoopRatePerSec: *snoop,
			Dispatch:        *dispatch,
			LoadGen:         *loadgen,
			Connections:     *connections,
		}
		if scenarioMode {
			res, err := agilewatts.RunScenario(agilewatts.ScenarioRun{
				ClusterRun: agilewatts.ClusterRun{
					ServiceRun:      run,
					Nodes:           *nodes,
					ClusterDispatch: *clusterDispatch,
					ParkDrained:     *park,
					// Shared seeds are what let identical timelines
					// collapse to one class; replicas restore error bars.
					SharedSeeds: *replicas > 0,
				},
				Scenario: *scenarioName,
				EpochNS:  agilewatts.Duration(*epochMS) * 1_000_000,
				Execution: agilewatts.ScenarioExecution{
					ColdEpochs:   *coldEpochs,
					Replicas:     *replicas,
					CompactNodes: *replicas > 0,
				},
				Elasticity: agilewatts.ScenarioElasticity{
					Controller: agilewatts.ControllerSpec{
						Name:     *controller,
						UpUtil:   *ctrlUp,
						DownUtil: *ctrlDown,
						Cooldown: *ctrlCooldown,
					},
				},
				Overload: agilewatts.OverloadSpec{
					Policy:        *overload,
					MaxUtil:       *overloadMaxUtil,
					MaxBacklogSec: *overloadBacklogSec,
				},
			})
			if err != nil {
				fatal(err)
			}
			ctrlChanges += res.ControllerChanges
			ctrlEpochs += len(res.Epochs)
			ovSaturated += res.SaturatedEpochs
			ovShedded += res.SheddedRequests
			ovBacklog += res.BacklogRate
			for _, ep := range res.Epochs {
				fmt.Printf("%.0f,%d,%.1f,%.1f,%s,%.0f,%d,%d,%d,%.2f,%.0f,%.1f,%.2f",
					rate, ep.Epoch,
					float64(ep.Start)/1e6, float64(ep.End)/1e6,
					ep.Phase, ep.RateQPS,
					ep.Fleet.ActiveNodes, ep.Parked, ep.Unparked,
					ep.Fleet.FleetPowerW, ep.Fleet.CompletedPerSec,
					ep.Fleet.QPSPerWatt, ep.Fleet.WorstP99US)
				if *controller != "" {
					fmt.Printf(",%d", ep.TargetNodes)
				}
				if *overload != "" {
					sat := 0
					if ep.Saturated {
						sat = 1
					}
					fmt.Printf(",%d,%.0f", sat, ep.SheddedRequests)
				}
				if *replicas > 0 && ep.CI != nil {
					fmt.Printf(",%.2f,%.2f,%.1f,%.1f,%.2f,%.2f",
						ep.CI.FleetPowerW.Lo, ep.CI.FleetPowerW.Hi,
						ep.CI.QPSPerWatt.Lo, ep.CI.QPSPerWatt.Hi,
						ep.CI.WorstP99US.Lo, ep.CI.WorstP99US.Hi)
				}
				fmt.Println()
			}
			continue
		}
		if clustered {
			res, err := agilewatts.RunCluster(agilewatts.ClusterRun{
				ServiceRun:      run,
				Nodes:           *nodes,
				ClusterDispatch: *clusterDispatch,
				ParkDrained:     *park,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%.0f,%d,%d,%d,%.2f,%.2f,%.0f,%.1f,%.2f,%.2f,%.2f,%.2f\n",
				rate, *nodes, res.ActiveNodes, res.IdleNodes,
				res.FleetPowerW, res.FleetPowerW/float64(*nodes),
				res.CompletedPerSec, res.QPSPerWatt,
				res.Server.AvgUS, res.Server.P99US, res.WorstP99US,
				res.EndToEnd.P99US)
			continue
		}
		res, err := agilewatts.RunService(run)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%.0f,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			rate, res.AvgCorePowerW, res.PackagePowerW,
			res.Server.AvgUS, res.Server.P99US,
			res.EndToEnd.AvgUS, res.EndToEnd.P99US,
			res.Residency[agilewatts.C0], res.Residency[agilewatts.C1],
			res.Residency[agilewatts.C6A], res.Residency[agilewatts.C1E],
			res.Residency[agilewatts.C6AE], res.Residency[agilewatts.C6],
			res.TurboFraction)
	}
	if *verbose {
		hits, misses := agilewatts.RunnerStats()
		total := hits + misses
		pct := 0.0
		if total > 0 {
			pct = float64(hits) / float64(total) * 100
		}
		fmt.Fprintf(os.Stderr, "awsweep: runner cache: %d hits / %d misses (%.1f%% hit rate, timeline runs included)\n",
			hits, misses, pct)
		if dnodes, classes, reps := agilewatts.RunnerDedupStats(); dnodes > 0 {
			dpct := (1 - float64(classes)/float64(dnodes)) * 100
			fmt.Fprintf(os.Stderr, "awsweep: class dedup: %d nodes -> %d classes (%.1f%% deduped), %d replica runs\n",
				dnodes, classes, dpct, reps)
		}
		if *controller != "" && ctrlEpochs > 0 {
			fmt.Fprintf(os.Stderr, "awsweep: controller %s: %d target changes over %d epochs (%.2f decisions/epoch)\n",
				*controller, ctrlChanges, ctrlEpochs, float64(ctrlChanges)/float64(ctrlEpochs))
		}
		if *overload != "" {
			fmt.Fprintf(os.Stderr, "awsweep: overload %s: %d saturated epochs, %.0f requests shed, %.0f QPS backlog at end\n",
				*overload, ovSaturated, ovShedded, ovBacklog)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awsweep:", err)
	os.Exit(1)
}
