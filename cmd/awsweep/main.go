// Command awsweep runs a single service/configuration sweep and emits a
// CSV series — the raw data behind the paper's figures, for custom
// plotting or what-if exploration.
//
// Usage:
//
//	awsweep -service memcached -config AW -rates 10000,100000,500000
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	agilewatts "repro"
)

func main() {
	service := flag.String("service", "memcached", "service profile: memcached|kafka|mysql")
	config := flag.String("config", "Baseline", "platform configuration name (see -configs)")
	rates := flag.String("rates", "10000,50000,100000,200000,300000,400000,500000", "comma-separated QPS points")
	seed := flag.Uint64("seed", 1, "simulation seed")
	durMS := flag.Int("duration-ms", 400, "measured window per point (ms)")
	snoop := flag.Float64("snoop-rate", 0, "per-core snoop rate (1/s)")
	dispatch := flag.String("dispatch", "",
		"dispatch policy: "+strings.Join(agilewatts.DispatchPolicies(), "|"))
	loadgen := flag.String("loadgen", "",
		"load generator: "+strings.Join(agilewatts.LoadGenerators(), "|"))
	connections := flag.Int("connections", 0,
		"closed-loop connection count (required with -loadgen closed-loop)")
	configs := flag.Bool("configs", false, "list configuration names and exit")
	flag.Parse()

	if *configs {
		for _, c := range agilewatts.Configs() {
			fmt.Printf("%-22s turbo=%v menu=%v\n", c.Name, c.Turbo, c.Menu)
		}
		return
	}

	if *connections != 0 && *loadgen != agilewatts.LoadClosedLoop {
		// Bare ClosedLoopConnections would silently switch the sweep to
		// closed-loop and ignore -rates; demand intent.
		fatal(fmt.Errorf("-connections requires -loadgen closed-loop"))
	}

	prof, err := agilewatts.ServiceByName(*service)
	if err != nil {
		fatal(err)
	}
	cfg, err := agilewatts.ConfigByName(*config)
	if err != nil {
		fatal(err)
	}

	fmt.Println("rate_qps,avg_core_w,package_w,server_avg_us,server_p99_us,e2e_avg_us,e2e_p99_us,c0,c1,c6a,c1e,c6ae,c6,turbo_fraction")
	for _, part := range strings.Split(*rates, ",") {
		rate, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fatal(fmt.Errorf("bad rate %q: %w", part, err))
		}
		res, err := agilewatts.RunService(agilewatts.ServiceRun{
			Platform:        cfg,
			Service:         prof,
			RateQPS:         rate,
			Seed:            *seed,
			DurationNS:      agilewatts.Duration(*durMS) * 1_000_000,
			SnoopRatePerSec: *snoop,
			Dispatch:        *dispatch,
			LoadGen:         *loadgen,
			Connections:     *connections,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%.0f,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
			rate, res.AvgCorePowerW, res.PackagePowerW,
			res.Server.AvgUS, res.Server.P99US,
			res.EndToEnd.AvgUS, res.EndToEnd.P99US,
			res.Residency[agilewatts.C0], res.Residency[agilewatts.C1],
			res.Residency[agilewatts.C6A], res.Residency[agilewatts.C1E],
			res.Residency[agilewatts.C6AE], res.Residency[agilewatts.C6],
			res.TurboFraction)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "awsweep:", err)
	os.Exit(1)
}
