package main

import (
	"fmt"
	"sort"
	"strings"
)

// scenarioOnlyFlags only affect a scenario sweep (-scenario). Setting
// one on a plain rate sweep used to be silently ignored — the flag
// parsed fine, the CSV came out, and the knob did nothing.
var scenarioOnlyFlags = []string{
	"epoch-ms", "cold-epochs", "replicas",
	"controller", "ctrl-up", "ctrl-down", "ctrl-cooldown",
	"overload", "overload-max-util", "overload-backlog-sec",
}

// checkFlagCombos rejects flag combinations that would silently do
// nothing: scenario knobs without -scenario, controller tuning without
// -controller, parking knobs on a single-node sweep, and any other flag
// alongside -scenario-file (the file specifies the whole run). set
// holds the flag names the user explicitly passed (flag.Visit).
func checkFlagCombos(set map[string]bool) error {
	if set["scenario-file"] {
		var extra []string
		for name := range set {
			if name != "scenario-file" {
				extra = append(extra, "-"+name)
			}
		}
		if len(extra) > 0 {
			sort.Strings(extra)
			return fmt.Errorf("%s ignored with -scenario-file: the file specifies the whole run", strings.Join(extra, ", "))
		}
		return nil
	}
	if !set["scenario"] {
		for _, name := range scenarioOnlyFlags {
			if set[name] {
				return fmt.Errorf("-%s only affects a scenario sweep: it needs -scenario (or -scenario-file)", name)
			}
		}
	}
	for _, name := range []string{"ctrl-up", "ctrl-down", "ctrl-cooldown"} {
		if set[name] && !set["controller"] {
			return fmt.Errorf("-%s tunes the closed-loop controller and needs -controller", name)
		}
	}
	for _, name := range []string{"overload-max-util", "overload-backlog-sec"} {
		if set[name] && !set["overload"] {
			return fmt.Errorf("-%s tunes admission control and needs -overload", name)
		}
	}
	if set["park-drained"] && !set["scenario"] && !set["nodes"] && !set["cluster-dispatch"] {
		return fmt.Errorf("-park-drained only affects a cluster or scenario sweep: it needs -nodes, -cluster-dispatch or -scenario")
	}
	return nil
}
