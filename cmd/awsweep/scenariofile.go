package main

import (
	"fmt"
	"io"

	agilewatts "repro"
)

// sweepScenarioFile loads a declarative scenario file, runs it, and
// emits the per-epoch fleet timeline CSV with the fault columns
// (down_nodes, restarts) the flag-driven scenario sweep does not carry.
// Any load or validation error is returned before a single epoch
// simulates — main prints it verbatim and exits non-zero, so an invalid
// file can never produce a partial run.
func sweepScenarioFile(path string, w io.Writer) error {
	run, err := agilewatts.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	res, err := agilewatts.RunScenario(run)
	if err != nil {
		return err
	}
	header := "epoch,start_ms,end_ms,phase,rate_qps,active_nodes,parked_nodes,down_nodes,unparks,restarts,fleet_w,fleet_qps,qps_per_w,worst_p99_us"
	ctrl := res.Controller != ""
	if ctrl {
		header += ",target_nodes"
	}
	reps := run.Execution.Replicas > 0
	if reps {
		header += ",fleet_w_lo,fleet_w_hi,qps_per_w_lo,qps_per_w_hi,worst_p99_lo_us,worst_p99_hi_us"
	}
	fmt.Fprintln(w, header)
	for _, ep := range res.Epochs {
		fmt.Fprintf(w, "%d,%.1f,%.1f,%s,%.0f,%d,%d,%d,%d,%d,%.2f,%.0f,%.1f,%.2f",
			ep.Epoch, float64(ep.Start)/1e6, float64(ep.End)/1e6,
			ep.Phase, ep.RateQPS,
			ep.Fleet.ActiveNodes, ep.Parked, ep.Down, ep.Unparked, ep.Restarted,
			ep.Fleet.FleetPowerW, ep.Fleet.CompletedPerSec,
			ep.Fleet.QPSPerWatt, ep.Fleet.WorstP99US)
		if ctrl {
			fmt.Fprintf(w, ",%d", ep.TargetNodes)
		}
		if reps && ep.CI != nil {
			fmt.Fprintf(w, ",%.2f,%.2f,%.1f,%.1f,%.2f,%.2f",
				ep.CI.FleetPowerW.Lo, ep.CI.FleetPowerW.Hi,
				ep.CI.QPSPerWatt.Lo, ep.CI.QPSPerWatt.Hi,
				ep.CI.WorstP99US.Lo, ep.CI.WorstP99US.Hi)
		}
		fmt.Fprintln(w)
	}
	return nil
}
