package main

import (
	"strings"
	"testing"
)

func setOf(names ...string) map[string]bool {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return set
}

func TestCheckFlagCombos(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		want string // "" means accepted
	}{
		{"plain rate sweep", setOf("service", "config", "rates"), ""},
		{"cluster sweep", setOf("nodes", "cluster-dispatch", "park-drained"), ""},
		{"scenario sweep with knobs", setOf("scenario", "epoch-ms", "replicas", "park-drained"), ""},
		{"controlled scenario sweep", setOf("scenario", "controller", "ctrl-up", "ctrl-down"), ""},
		{"overloaded scenario sweep", setOf("scenario", "overload", "overload-max-util", "overload-backlog-sec"), ""},
		{"scenario file alone", setOf("scenario-file"), ""},

		{"epoch-ms without scenario", setOf("epoch-ms"), "needs -scenario"},
		{"cold-epochs without scenario", setOf("cold-epochs"), "needs -scenario"},
		{"replicas without scenario", setOf("replicas"), "needs -scenario"},
		{"controller without scenario", setOf("controller"), "needs -scenario"},
		{"ctrl tuning without scenario", setOf("ctrl-cooldown"), "needs -scenario"},
		{"ctrl tuning without controller", setOf("scenario", "ctrl-up"), "needs -controller"},
		{"overload without scenario", setOf("overload"), "needs -scenario"},
		{"overload tuning without scenario", setOf("overload-max-util"), "needs -scenario"},
		{"overload tuning without overload", setOf("scenario", "overload-backlog-sec"), "needs -overload"},
		{"park-drained on a single-node sweep", setOf("park-drained", "rates"), "needs -nodes, -cluster-dispatch or -scenario"},
		{"scenario file plus sweep flags", setOf("scenario-file", "rates", "nodes"), "ignored with -scenario-file"},
		{"scenario file plus verbose", setOf("scenario-file", "v"), "-v ignored with -scenario-file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkFlagCombos(tc.set)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("rejected a valid combination: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted an ineffective flag combination")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
