package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	agilewatts "repro"
)

// writeScenario drops a scenario document into a temp dir and returns
// its path.
func writeScenario(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const validScenarioDoc = `{
  "schedule": {"shape": "constant", "base_qps": 100000, "total_ms": 30},
  "fleet": {"nodes": 2, "warmup_ms": 5},
  "epoch_ms": 10
}`

// An overlapping fault window: decodes fine, rejected by Normalize.
const invalidScenarioDoc = `{
  "schedule": {"shape": "constant", "base_qps": 100000, "total_ms": 30},
  "fleet": {"nodes": 2},
  "epoch_ms": 10,
  "faults": {"nodes": [
    {"node": 0, "kind": "crash", "start_ms": 0, "end_ms": 10},
    {"node": 0, "kind": "crash", "start_ms": 5, "end_ms": 15}
  ]}
}`

func TestRunScenarioFileValid(t *testing.T) {
	var out bytes.Buffer
	if err := runScenarioFile(writeScenario(t, validScenarioDoc), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"scenario \"steady\"", "2 nodes", "epoch 10ms", "total:", "restarts"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRunScenarioFileInvalid pins the no-partial-run contract: the
// helper returns the Normalize error verbatim — the text main prints
// before exiting non-zero — and writes nothing.
func TestRunScenarioFileInvalid(t *testing.T) {
	path := writeScenario(t, invalidScenarioDoc)
	var out bytes.Buffer
	err := runScenarioFile(path, &out)
	if err == nil {
		t.Fatal("invalid scenario file ran")
	}
	if out.Len() != 0 {
		t.Errorf("invalid file produced partial output:\n%s", out.String())
	}
	run, lerr := agilewatts.LoadScenarioFile(path)
	if lerr != nil {
		t.Fatal(lerr)
	}
	if want := agilewatts.ValidateScenario(run); want == nil || err.Error() != want.Error() {
		t.Errorf("CLI error %q != ValidateScenario error %q", err, want)
	}
}

func TestRunScenarioFileMissing(t *testing.T) {
	var out bytes.Buffer
	if err := runScenarioFile(filepath.Join(t.TempDir(), "absent.json"), &out); err == nil {
		t.Fatal("missing scenario file ran")
	}
	if out.Len() != 0 {
		t.Error("missing file produced output")
	}
}
