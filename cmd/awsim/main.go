// Command awsim reproduces the paper's evaluation: it runs any (or all)
// of the simulation-backed experiments and prints the corresponding
// tables/series.
//
// Usage:
//
//	awsim [-quick] [-seed N] [experiment ...]
//
// With no experiment arguments it runs the full evaluation section
// (figures 8-13, table 5, validation).
package main

import (
	"flag"
	"fmt"
	"os"

	agilewatts "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity runs (shorter windows, fewer load points)")
	seed := flag.Uint64("seed", 0, "override experiment seed")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		for _, n := range agilewatts.Experiments() {
			fmt.Println(n)
		}
		return
	}

	opts := agilewatts.DefaultOptions()
	if *quick {
		opts = agilewatts.QuickOptions()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}

	names := flag.Args()
	if len(names) == 0 {
		names = []string{
			agilewatts.ExpFigure8, agilewatts.ExpFigure9, agilewatts.ExpFigure10,
			agilewatts.ExpFigure11, agilewatts.ExpFigure12, agilewatts.ExpFigure13,
			agilewatts.ExpTable5, agilewatts.ExpValidation,
		}
	}
	for _, n := range names {
		if err := agilewatts.RunExperiment(n, opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "awsim:", err)
			os.Exit(1)
		}
	}
}
