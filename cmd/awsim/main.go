// Command awsim reproduces the paper's evaluation: it runs any (or all)
// of the simulation-backed experiments and prints the corresponding
// tables/series.
//
// Usage:
//
//	awsim [-quick] [-seed N] [-dispatch POLICY] [-loadgen GEN]
//	      [-nodes N] [-cluster-dispatch POLICY]
//	      [-scenario SHAPE] [-epoch-ms N] [experiment ...]
//
// With no experiment arguments it runs the full evaluation section
// (figures 8-13, table 5, validation). -dispatch and -loadgen override
// the request placement policy and arrival generator for every
// simulation, answering "what if the paper's server didn't round-robin"
// without touching the experiment code. -nodes and -cluster-dispatch
// parameterize the fleet-level cluster experiment:
//
//	awsim -nodes 8 -cluster-dispatch consolidate cluster
//
// -scenario and -epoch-ms parameterize the time-varying scenario
// experiment (diurnal day by default), which steps the fleet dispatcher
// every epoch and compares Baseline against AW phase by phase:
//
//	awsim -nodes 8 -scenario diurnal -epoch-ms 30 scenario
//
// -controller routes both fleets through a closed-loop controller
// (oracle, reactive or predictive) that sizes the active set from live
// telemetry instead of the precomputed plan; -ctrl-up, -ctrl-down and
// -ctrl-cooldown tune the reactive hysteresis. The scenario experiment
// always appends the oracle-vs-reactive-vs-predictive comparison table:
//
//	awsim -nodes 8 -controller reactive -ctrl-cooldown 3 scenario
//
// -overload applies an admission-control policy (shed, degrade or
// queue) to the scenario experiment's fleets when the offered rate
// exceeds the active set's capacity; -overload-max-util and
// -overload-backlog-sec tune the capacity ceiling and the queue bound.
// The dedicated overload experiment compares all three policies on the
// same over-capacity spike:
//
//	awsim -quick -nodes 4 overload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	agilewatts "repro"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity runs (shorter windows, fewer load points)")
	seed := flag.Uint64("seed", 0, "override experiment seed")
	list := flag.Bool("list", false, "list experiment names and exit")
	dispatch := flag.String("dispatch", "",
		"dispatch policy for all simulations: "+strings.Join(agilewatts.DispatchPolicies(), "|"))
	loadgen := flag.String("loadgen", "",
		"load generator for all simulations: "+strings.Join(agilewatts.LoadGenerators(), "|"))
	connections := flag.Int("connections", 0,
		"closed-loop connection count (required with -loadgen closed-loop)")
	nodes := flag.Int("nodes", 0,
		"fleet size for the cluster experiment (default 4)")
	clusterDispatch := flag.String("cluster-dispatch", "",
		"cluster load-partitioning policy for the cluster experiment's cost rows: "+
			strings.Join(agilewatts.ClusterPolicies(), "|"))
	scenarioName := flag.String("scenario", "",
		"time-varying load shape for the scenario experiment: "+
			strings.Join(agilewatts.ScenarioNames(), "|"))
	epochMS := flag.Int("epoch-ms", 0,
		"scenario experiment re-dispatch interval in ms (default: schedule/12)")
	coldEpochs := flag.Bool("cold-epochs", false,
		"run the scenario experiment on the legacy cold-start engine "+
			"(fresh simulations + synthetic unpark penalty per epoch) instead of "+
			"the warm resumable-instance path")
	replicas := flag.Int("replicas", 0,
		"scenario experiment only: K seeded replicas per timeline equivalence "+
			"class (shared node seeds, 95% CI note on the phase table)")
	controller := flag.String("controller", "",
		"scenario experiment fleet controller (closed-loop, warm path): "+
			strings.Join(agilewatts.FleetControllers(), "|")+" (default: open-loop plan)")
	ctrlUp := flag.Float64("ctrl-up", 0,
		"reactive controller scale-up utilization threshold (default 0.75)")
	ctrlDown := flag.Float64("ctrl-down", 0,
		"reactive controller scale-down utilization threshold (default 0.40)")
	ctrlCooldown := flag.Int("ctrl-cooldown", 0,
		"reactive controller minimum epochs between target changes (default 2)")
	overload := flag.String("overload", "",
		"scenario experiment admission-control policy past fleet capacity: "+
			strings.Join(agilewatts.OverloadPolicies(), "|")+" (default: admit everything)")
	overloadMaxUtil := flag.Float64("overload-max-util", 0,
		"per-node utilization the admission capacity is computed at (default 0.85)")
	overloadBacklogSec := flag.Float64("overload-backlog-sec", 0,
		"queue policy backlog bound, in seconds of full-fleet capacity (default 1.0)")
	scenarioFile := flag.String("scenario-file", "",
		"declarative scenario file (JSON: schedule + fleet + elasticity + faults); "+
			"runs it and prints the fleet timeline instead of any experiment")
	flag.Parse()

	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := checkFlagCombos(set, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "awsim:", err)
		os.Exit(2)
	}

	if *scenarioFile != "" {
		if err := runScenarioFile(*scenarioFile, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "awsim:", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, n := range agilewatts.Experiments() {
			fmt.Println(n)
		}
		return
	}

	opts := agilewatts.DefaultOptions()
	if *quick {
		opts = agilewatts.QuickOptions()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *connections != 0 && *loadgen != agilewatts.LoadClosedLoop {
		// Bare ClosedLoopConnections would silently switch every run to
		// closed-loop and make rate sweeps meaningless; demand intent.
		fmt.Fprintln(os.Stderr, "awsim: -connections requires -loadgen closed-loop")
		os.Exit(2)
	}
	opts.Dispatch = *dispatch
	opts.LoadGen = *loadgen
	opts.Connections = *connections
	opts.Nodes = *nodes
	opts.ClusterDispatch = *clusterDispatch
	opts.Scenario = *scenarioName
	opts.Epoch = agilewatts.Duration(*epochMS) * 1_000_000
	opts.ColdEpochs = *coldEpochs
	opts.Replicas = *replicas
	opts.Controller = *controller
	opts.ControllerUpUtil = *ctrlUp
	opts.ControllerDownUtil = *ctrlDown
	opts.ControllerCooldown = *ctrlCooldown
	opts.OverloadPolicy = *overload
	opts.OverloadMaxUtil = *overloadMaxUtil
	opts.OverloadBacklogSec = *overloadBacklogSec

	names := flag.Args()
	if len(names) == 0 {
		names = []string{
			agilewatts.ExpFigure8, agilewatts.ExpFigure9, agilewatts.ExpFigure10,
			agilewatts.ExpFigure11, agilewatts.ExpFigure12, agilewatts.ExpFigure13,
			agilewatts.ExpTable5, agilewatts.ExpValidation,
		}
	}
	for _, n := range names {
		if err := agilewatts.RunExperiment(n, opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "awsim:", err)
			os.Exit(1)
		}
	}
}
