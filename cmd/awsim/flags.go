package main

import (
	"fmt"
	"sort"
	"strings"

	agilewatts "repro"
)

// scenarioOnlyFlags only affect the scenario experiment. Setting one on
// a run that never executes it used to be silently ignored — the flag
// parsed fine, the run produced output, and the knob did nothing.
var scenarioOnlyFlags = []string{
	"scenario", "epoch-ms", "cold-epochs", "replicas",
	"controller", "ctrl-up", "ctrl-down", "ctrl-cooldown",
}

// checkFlagCombos rejects flag combinations that would silently do
// nothing: scenario knobs on a run that does not include the scenario
// experiment, controller tuning without a controller, and any other
// flag alongside -scenario-file (the file specifies the whole run).
// set holds the flag names the user explicitly passed (flag.Visit);
// experiments is the positional experiment list.
func checkFlagCombos(set map[string]bool, experiments []string) error {
	if set["scenario-file"] {
		var extra []string
		for name := range set {
			if name != "scenario-file" {
				extra = append(extra, "-"+name)
			}
		}
		if len(extra) > 0 {
			sort.Strings(extra)
			return fmt.Errorf("%s ignored with -scenario-file: the file specifies the whole run", strings.Join(extra, ", "))
		}
		return nil
	}
	runsScenario := false
	for _, e := range experiments {
		if e == agilewatts.ExpScenario {
			runsScenario = true
		}
	}
	if !runsScenario {
		for _, name := range scenarioOnlyFlags {
			if set[name] {
				return fmt.Errorf("-%s only affects the %q experiment: name it on the command line or use -scenario-file", name, agilewatts.ExpScenario)
			}
		}
	}
	for _, name := range []string{"ctrl-up", "ctrl-down", "ctrl-cooldown"} {
		if set[name] && !set["controller"] {
			return fmt.Errorf("-%s tunes the closed-loop controller and needs -controller", name)
		}
	}
	// The overload knobs cut across two experiments: -overload applies a
	// single admission policy to the scenario experiment's fleets, while
	// the overload experiment sweeps every policy itself and only honors
	// the tuning knobs.
	runsOverload := false
	for _, e := range experiments {
		if e == agilewatts.ExpOverload {
			runsOverload = true
		}
	}
	if set["overload"] && !runsScenario {
		return fmt.Errorf("-overload applies admission control to the %q experiment: name it on the command line (the %q experiment sweeps every policy by itself)",
			agilewatts.ExpScenario, agilewatts.ExpOverload)
	}
	for _, name := range []string{"overload-max-util", "overload-backlog-sec"} {
		if set[name] && !set["overload"] && !runsOverload {
			return fmt.Errorf("-%s tunes admission control and needs -overload or the %q experiment", name, agilewatts.ExpOverload)
		}
	}
	return nil
}
