package main

import (
	"strings"
	"testing"
)

func setOf(names ...string) map[string]bool {
	set := map[string]bool{}
	for _, n := range names {
		set[n] = true
	}
	return set
}

func TestCheckFlagCombos(t *testing.T) {
	cases := []struct {
		name        string
		set         map[string]bool
		experiments []string
		want        string // "" means accepted
	}{
		{"no flags, default run", setOf(), nil, ""},
		{"quick seed, default run", setOf("quick", "seed"), nil, ""},
		{"scenario knobs with the scenario experiment", setOf("scenario", "epoch-ms", "replicas"), []string{"scenario"}, ""},
		{"controller tuning with a controller", setOf("controller", "ctrl-cooldown"), []string{"scenario"}, ""},
		{"overloaded scenario experiment", setOf("overload", "overload-max-util"), []string{"scenario"}, ""},
		{"overload tuning on the overload experiment", setOf("overload-max-util", "overload-backlog-sec"), []string{"overload"}, ""},
		{"scenario file alone", setOf("scenario-file"), nil, ""},

		{"scenario shape without the experiment", setOf("scenario"), nil, `only affects the "scenario" experiment`},
		{"epoch-ms on the cluster experiment", setOf("epoch-ms"), []string{"cluster"}, `only affects the "scenario" experiment`},
		{"cold-epochs without the experiment", setOf("cold-epochs"), nil, `only affects the "scenario" experiment`},
		{"replicas without the experiment", setOf("replicas"), nil, `only affects the "scenario" experiment`},
		{"controller without the experiment", setOf("controller"), nil, `only affects the "scenario" experiment`},
		{"ctrl tuning without a controller", setOf("ctrl-up"), []string{"scenario"}, "needs -controller"},
		{"ctrl cooldown without a controller", setOf("ctrl-cooldown"), []string{"scenario"}, "needs -controller"},
		{"overload policy without the scenario experiment", setOf("overload"), []string{"overload"}, `applies admission control to the "scenario" experiment`},
		{"overload tuning without a consumer", setOf("overload-backlog-sec"), []string{"cluster"}, `needs -overload or the "overload" experiment`},
		{"scenario file plus other flags", setOf("scenario-file", "nodes", "controller"), nil, "ignored with -scenario-file"},
		{"scenario file plus quick", setOf("scenario-file", "quick"), nil, "-quick ignored with -scenario-file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkFlagCombos(tc.set, tc.experiments)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("rejected a valid combination: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("accepted an ineffective flag combination")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
