package main

import (
	"fmt"
	"io"

	agilewatts "repro"
)

// runScenarioFile loads a declarative scenario file, runs it, and
// writes the phase and epoch summaries to w. Any load or validation
// error is returned before a single epoch simulates — main prints it
// verbatim and exits non-zero, so an invalid file can never produce a
// partial run.
func runScenarioFile(path string, w io.Writer) error {
	run, err := agilewatts.LoadScenarioFile(path)
	if err != nil {
		return err
	}
	res, err := agilewatts.RunScenario(run)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scenario %q: %d nodes, %s dispatch, epoch %.0fms, total %.0fms",
		res.Schedule, run.Nodes, res.Dispatch,
		float64(res.Epoch)/1e6, float64(res.TotalTime)/1e6)
	if res.Controller != "" {
		fmt.Fprintf(w, ", %s controller", res.Controller)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "\nphase                 ms      kqps    fleet_w   qps_per_w   worst_p99_us  parked")
	for _, ph := range res.Phases {
		fmt.Fprintf(w, "%-18s %6.0f %9.0f %10.2f %11.1f %14.2f %7.1f\n",
			ph.Phase, float64(ph.Time)/1e6, ph.AvgRateQPS/1000,
			ph.AvgFleetPowerW, ph.QPSPerWatt, ph.WorstP99US, ph.AvgParkedNodes)
	}
	fmt.Fprintln(w, "\nepoch  window_ms        phase        kqps  active  parked  down  restarts    fleet_w  worst_p99_us")
	for _, ep := range res.Epochs {
		fmt.Fprintf(w, "%5d  %6.1f-%-6.1f %12s %11.0f %7d %7d %5d %9d %10.2f %13.2f",
			ep.Epoch, float64(ep.Start)/1e6, float64(ep.End)/1e6,
			ep.Phase, ep.RateQPS/1000,
			ep.Fleet.ActiveNodes, ep.Parked, ep.Down, ep.Restarted,
			ep.Fleet.FleetPowerW, ep.Fleet.WorstP99US)
		if res.Controller != "" {
			fmt.Fprintf(w, "  target=%d", ep.TargetNodes)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\ntotal: %.2f J, %.2f W avg, %.1f qps/w, worst p99 %.2f us, %d unparks, %d restarts, %d classes\n",
		res.FleetEnergyJ, res.AvgFleetPowerW, res.QPSPerWatt, res.WorstP99US,
		res.Unparks, res.Restarts, res.Classes)
	return nil
}
