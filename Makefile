# Developer workflow shortcuts. The perf targets implement the profiling
# loop documented in DESIGN.md ("Performance"): benchmark, profile, read
# the top, fix, re-benchmark, gate.

GO ?= go
PROF_DIR := .prof
BENCH ?= BenchmarkRunService
PKG ?= ./internal/server

.PHONY: all build test race bench bench-micro profile profile-mem bench-json clean-prof

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark suite (regenerates every table/figure once each).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# The CI-gated microbenchmarks, with stable sampling.
bench-micro:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 0.3s -count 6 \
		./internal/sim ./internal/stats ./internal/server ./internal/cluster

# CPU-profile one benchmark (default BenchmarkRunService) and open the
# top. Narrow with BENCH=... PKG=..., drill down with:
#   go tool pprof $(PROF_DIR)/test.bin $(PROF_DIR)/cpu.prof
profile:
	@mkdir -p $(PROF_DIR)
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 3s \
		-cpuprofile $(PROF_DIR)/cpu.prof -o $(PROF_DIR)/test.bin $(PKG)
	$(GO) tool pprof -top -nodecount 25 $(PROF_DIR)/test.bin $(PROF_DIR)/cpu.prof

# Allocation profile of the same benchmark (hunt hot-path garbage).
profile-mem:
	@mkdir -p $(PROF_DIR)
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 3s -benchmem \
		-memprofile $(PROF_DIR)/mem.prof -o $(PROF_DIR)/test.bin $(PKG)
	$(GO) tool pprof -top -nodecount 25 -sample_index=alloc_objects \
		$(PROF_DIR)/test.bin $(PROF_DIR)/mem.prof

# Record the perf trajectory: run the gated microbenchmarks and emit a
# dated BENCH_<date>.json snapshot (the same artifact CI uploads).
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime 0.3s -count 6 \
		./internal/sim ./internal/stats ./internal/server ./internal/cluster \
		| tee $(PROF_DIR)/bench-micro.txt
	$(GO) run ./cmd/benchgate -new $(PROF_DIR)/bench-micro.txt \
		-emit BENCH_$$(date -u +%F).json

clean-prof:
	rm -rf $(PROF_DIR)
